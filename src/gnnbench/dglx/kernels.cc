#include "gnnbench/dglx/kernels.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "gnnbench/core/timer.h"
#include "gnnbench/kernels/fusion.h"
#include "gnnbench/kernels/kernels.h"

namespace gnnbench {
namespace dglx {

using core::Tensor;
using device::KernelDesc;

namespace {

/** Roofline signature of one fused g-SpMM call. */
KernelDesc
spmmDesc(const graph::CsrGraph &csc, int64_t feat_dim, bool weighted,
         const Costs &costs)
{
    const double e = static_cast<double>(csc.numEdges());
    const double n_out = static_cast<double>(csc.numRows);
    KernelDesc d;
    d.name = "gspmm";
    d.flops = (weighted ? 2.0 : 1.0) * e * feat_dim;
    d.bytes = 4.0 * (e * feat_dim + n_out * feat_dim) + 8.0 * e +
              (weighted ? 4.0 * e : 0.0);
    d.efficiency = costs.gpuSpmmEff;
    d.frameworkOverhead = costs.gpuCallOverhead;
    return d;
}

KernelDesc
sddmmDesc(const graph::CsrGraph &csc, int64_t cols, const Costs &costs)
{
    const double e = static_cast<double>(csc.numEdges());
    KernelDesc d;
    d.name = "gsddmm";
    d.flops = 2.0 * e * cols;
    d.bytes = 4.0 * e * (2.0 * cols + 1.0) + 8.0 * e;
    d.efficiency = costs.gpuSddmmEff;
    d.frameworkOverhead = costs.gpuCallOverhead;
    return d;
}

KernelDesc
elemDesc(const char *name, double elems, const Costs &costs)
{
    KernelDesc d;
    d.name = name;
    d.flops = 2.0 * elems;
    d.bytes = 8.0 * elems;
    d.efficiency = costs.gpuElemEff;
    return d;
}

KernelDesc
gemmDesc(int64_t m, int64_t k, int64_t n, const Costs &costs)
{
    KernelDesc d;
    d.name = "gemm";
    d.flops = 2.0 * static_cast<double>(m) * k * n;
    d.bytes = 4.0 * (static_cast<double>(m) * k +
                     static_cast<double>(k) * n +
                     static_cast<double>(m) * n);
    d.efficiency = costs.gpuGemmEff;
    return d;
}

/** Run fn as a kernel through the context's session (if any). */
template <typename F>
void
runKernel(const KernelCtx &ctx, const KernelDesc &desc, F &&fn)
{
    if (ctx.session) {
        ctx.session->runKernel(ctx.dev, desc, std::forward<F>(fn));
    } else {
        fn();
    }
}

kernels::ReduceOp
toReduceOp(Reducer reducer)
{
    switch (reducer) {
    case Reducer::Sum:
        return kernels::ReduceOp::Sum;
    case Reducer::Mean:
        return kernels::ReduceOp::Mean;
    case Reducer::Max:
        return kernels::ReduceOp::Max;
    }
    return kernels::ReduceOp::Sum;
}

} // namespace

Tensor
gspmm(const graph::CsrGraph &csc, const Tensor &x, Reducer reducer,
      const float *w, const KernelCtx &ctx)
{
    GNNBENCH_CHECK(x.rows() == csc.numCols,
                   "gspmm: feature rows != source nodes");
    const int64_t f = x.cols();
    Tensor out;
    runKernel(ctx, spmmDesc(csc, f, w != nullptr, ctx.costs), [&] {
        out = kernels::spmm(csc, x, toReduceOp(reducer), w);
    });
    return out;
}

Tensor
gspmmScatter(const graph::CsrGraph &csc, const Tensor &x,
             const float *w, const KernelCtx &ctx)
{
    GNNBENCH_CHECK(x.rows() == csc.numRows,
                   "gspmmScatter: feature rows != adjacency rows");
    const int64_t f = x.cols();
    Tensor out;
    KernelDesc desc = spmmDesc(csc, f, w != nullptr, ctx.costs);
    desc.name = "gspmm_scatter";
    runKernel(ctx, desc,
              [&] { out = kernels::spmmScatter(csc, x, w); });
    return out;
}

Tensor
gsddmmAdd(const graph::CsrGraph &csc, const Tensor &a_dst,
          const Tensor &b_src, const KernelCtx &ctx)
{
    GNNBENCH_CHECK(a_dst.rows() == csc.numRows &&
                       b_src.rows() == csc.numCols,
                   "gsddmmAdd: operand rows mismatch");
    GNNBENCH_CHECK(a_dst.cols() == b_src.cols(),
                   "gsddmmAdd: operand cols mismatch");
    const int64_t h = a_dst.cols();
    Tensor out;
    runKernel(ctx, sddmmDesc(csc, h, ctx.costs),
              [&] { out = kernels::sddmmAdd(csc, a_dst, b_src); });
    return out;
}

Tensor
gsddmmDot(const graph::CsrGraph &csc, const Tensor &a_dst,
          const Tensor &b_src, const KernelCtx &ctx)
{
    GNNBENCH_CHECK(a_dst.rows() == csc.numRows &&
                       b_src.rows() == csc.numCols,
                   "gsddmmDot: operand rows mismatch");
    GNNBENCH_CHECK(a_dst.cols() == b_src.cols(),
                   "gsddmmDot: operand cols mismatch");
    const int64_t f = a_dst.cols();
    Tensor out;
    runKernel(ctx, sddmmDesc(csc, f, ctx.costs),
              [&] { out = kernels::sddmmDot(csc, a_dst, b_src); });
    return out;
}

Tensor
gsddmmAttnV2(const graph::CsrGraph &csc, const Tensor &z_dst,
             const Tensor &z_src, const Tensor &attn_vec,
             float negative_slope, const KernelCtx &ctx)
{
    GNNBENCH_CHECK(z_dst.rows() == csc.numRows &&
                       z_src.rows() == csc.numCols,
                   "gsddmmAttnV2: operand rows mismatch");
    GNNBENCH_CHECK(attn_vec.rows() == 1 &&
                       attn_vec.cols() == z_dst.cols() &&
                       z_src.cols() == z_dst.cols(),
                   "gsddmmAttnV2: attention vector shape");
    const int64_t f = z_dst.cols();
    Tensor out;
    KernelDesc d = sddmmDesc(csc, f, ctx.costs);
    d.name = "gsddmm_attn_v2";
    d.flops *= 2.0;  // add + leakyrelu + dot
    runKernel(ctx, d, [&] {
        out = Tensor::empty(csc.numEdges(), 1);
        const float *a = attn_vec.data();
        for (NodeId dst = 0; dst < csc.numRows; ++dst) {
            const float *zd = z_dst.row(dst);
            for (EdgeId e = csc.indptr[dst]; e < csc.indptr[dst + 1];
                 ++e) {
                const float *zs = z_src.row(csc.indices[e]);
                float acc = 0.0f;
                for (int64_t j = 0; j < f; ++j) {
                    float v = zd[j] + zs[j];
                    if (v < 0.0f)
                        v *= negative_slope;
                    acc += a[j] * v;
                }
                out(e, 0) = acc;
            }
        }
    });
    return out;
}

Tensor
edgeSoftmax(const graph::CsrGraph &csc, const Tensor &scores,
            const KernelCtx &ctx)
{
    GNNBENCH_CHECK(scores.rows() == csc.numEdges(),
                   "edgeSoftmax: one score row per edge required");
    const int64_t h = scores.cols();
    Tensor out;
    runKernel(
        ctx,
        elemDesc("edge_softmax",
                 static_cast<double>(scores.numel()) * 3.0, ctx.costs),
        [&] {
            out = Tensor::empty(scores.rows(), scores.cols());
            for (NodeId d = 0; d < csc.numRows; ++d) {
                const EdgeId begin = csc.indptr[d];
                const EdgeId end = csc.indptr[d + 1];
                for (int64_t j = 0; j < h; ++j) {
                    float mx = -std::numeric_limits<float>::infinity();
                    for (EdgeId e = begin; e < end; ++e)
                        mx = std::max(mx, scores(e, j));
                    double z = 0.0;
                    for (EdgeId e = begin; e < end; ++e)
                        z += std::exp(
                            static_cast<double>(scores(e, j) - mx));
                    const float invz =
                        z > 0.0 ? static_cast<float>(1.0 / z) : 0.0f;
                    for (EdgeId e = begin; e < end; ++e)
                        out(e, j) =
                            std::exp(scores(e, j) - mx) * invz;
                }
            }
        });
    return out;
}

Tensor
gspmmEdgeScalar(const graph::CsrGraph &csc, const Tensor &x,
                const Tensor &att, const KernelCtx &ctx)
{
    GNNBENCH_CHECK(att.rows() == csc.numEdges() && att.cols() == 1,
                   "gspmmEdgeScalar: attention must be E x 1");
    GNNBENCH_CHECK(x.rows() == csc.numCols,
                   "gspmmEdgeScalar: feature rows != source nodes");
    const int64_t f = x.cols();
    Tensor out;
    runKernel(ctx, spmmDesc(csc, f, true, ctx.costs), [&] {
        // att is E x 1, so its storage is exactly the per-edge
        // weight array in csc traversal order.
        out = kernels::spmm(csc, x, kernels::ReduceOp::Sum,
                            att.data());
    });
    return out;
}

Tensor
gemm(const Tensor &a, const Tensor &b, const KernelCtx &ctx)
{
    Tensor out;
    runKernel(ctx, gemmDesc(a.rows(), a.cols(), b.cols(), ctx.costs),
              [&] { out = core::ops::matmul(a, b); });
    return out;
}

core::ag::Var
spmmVar(const graph::CsrGraph &csc, const float *w_csc,
        std::shared_ptr<const graph::CsrGraph> bwd,
        std::shared_ptr<const std::vector<float>> w_bwd,
        const core::ag::Var &x, const KernelCtx &ctx)
{
    Tensor y = gspmm(csc, x->value, Reducer::Sum, w_csc, ctx);
    return core::ag::makeOp(
        "dglx.spmm", std::move(y), {x},
        [bwd = std::move(bwd), w_bwd = std::move(w_bwd), x,
         ctx](core::ag::Node &n) {
            if (x->requiresGrad) {
                const float *w = w_bwd ? w_bwd->data() : nullptr;
                x->accumulateGrad(
                    gspmm(*bwd, n.grad, Reducer::Sum, w, ctx));
            }
        });
}

core::ag::Var
spmmScatterBwdVar(std::shared_ptr<const graph::CsrGraph> csc,
                  std::shared_ptr<const std::vector<float>> w,
                  const core::ag::Var &x, const KernelCtx &ctx)
{
    const float *w_fwd = w ? w->data() : nullptr;
    Tensor y = gspmm(*csc, x->value, Reducer::Sum, w_fwd, ctx);
    return core::ag::makeOp(
        "dglx.spmm", std::move(y), {x},
        [csc = std::move(csc), w = std::move(w), x,
         ctx](core::ag::Node &n) {
            if (x->requiresGrad) {
                const float *wb = w ? w->data() : nullptr;
                x->accumulateGrad(
                    gspmmScatter(*csc, n.grad, wb, ctx));
            }
        });
}

namespace {

/** Inverse in-degree per csc row — the SAGE mean normalization,
 *  computed with the exact expression the materialized row-scale
 *  path uses so fused and fallback normalize bit-identically. */
std::vector<float>
invDegree(const graph::CsrGraph &csc)
{
    std::vector<float> s(static_cast<size_t>(csc.numRows));
    for (NodeId v = 0; v < csc.numRows; ++v) {
        const EdgeId d = csc.indptr[v + 1] - csc.indptr[v];
        s[static_cast<size_t>(v)] =
            d > 0 ? 1.0f / static_cast<float>(d) : 0.0f;
    }
    return s;
}

/**
 * Record the spmm→row-scale chain in a kernel graph and ask it
 * whether the normalization may fold into the aggregation kernel.
 * The eliminated traffic is the two materialized elementwise passes
 * over the out_rows x f sum tensor (8 bytes/element each, forward
 * and backward).
 */
bool
fuseMeanChain(const graph::CsrGraph &csc, int64_t f)
{
    kernels::KernelGraph g(/*framework_supports_fusion=*/true);
    const uint64_t numel = static_cast<uint64_t>(csc.numRows) *
                           static_cast<uint64_t>(f);
    const int agg =
        g.addNode(kernels::FusedOp::Spmm, "gspmm", 4 * numel);
    const int scale =
        g.addNode(kernels::FusedOp::RowScale, "row_scale", 4 * numel);
    g.addEdge(agg, scale);
    return g.fuse(agg, scale, 16 * numel);
}

} // namespace

core::ag::Var
spmmMeanVar(const graph::CsrGraph &csc,
            std::shared_ptr<const graph::CsrGraph> bwd,
            const core::ag::Var &x, const KernelCtx &ctx)
{
    const int64_t f = x->value.cols();
    if (!fuseMeanChain(csc, f)) {
        core::ag::Var agg =
            spmmVar(csc, nullptr, std::move(bwd), nullptr, x, ctx);
        std::vector<float> inv;
        runPrep(ctx, static_cast<double>(csc.numRows),
                [&] { inv = invDegree(csc); });
        return rowScaleVar(agg, std::move(inv), ctx);
    }
    KernelDesc desc = spmmDesc(csc, f, false, ctx.costs);
    desc.name = "gspmm_mean";
    Tensor y;
    runKernel(ctx, desc, [&] {
        y = kernels::spmm(csc, x->value, kernels::ReduceOp::Mean);
    });
    // Backward folds the inverse destination degree into the
    // transposed aggregation's edge weights: bwd's indices are
    // destinations, so w[e] = inv[bwd.indices[e]].
    auto w_bwd = std::make_shared<std::vector<float>>();
    {
        const graph::CsrGraph &b = *bwd;
        runPrep(ctx,
                static_cast<double>(csc.numRows) +
                    static_cast<double>(b.numEdges()),
                [&] {
                    const std::vector<float> inv = invDegree(csc);
                    w_bwd->resize(static_cast<size_t>(b.numEdges()));
                    for (EdgeId e = 0; e < b.numEdges(); ++e)
                        (*w_bwd)[static_cast<size_t>(e)] = inv[
                            static_cast<size_t>(b.indices[e])];
                });
    }
    return core::ag::makeOp(
        "dglx.spmm_mean", std::move(y), {x},
        [bwd = std::move(bwd), w_bwd = std::move(w_bwd), x,
         ctx](core::ag::Node &n) {
            if (x->requiresGrad)
                x->accumulateGrad(gspmm(*bwd, n.grad, Reducer::Sum,
                                        w_bwd->data(), ctx));
        });
}

core::ag::Var
spmmMeanScatterBwdVar(std::shared_ptr<const graph::CsrGraph> csc,
                      const core::ag::Var &x, const KernelCtx &ctx)
{
    const graph::CsrGraph &g = *csc;
    const int64_t f = x->value.cols();
    if (!fuseMeanChain(g, f)) {
        core::ag::Var agg = spmmScatterBwdVar(csc, nullptr, x, ctx);
        std::vector<float> inv;
        runPrep(ctx, static_cast<double>(g.numRows),
                [&] { inv = invDegree(g); });
        return rowScaleVar(agg, std::move(inv), ctx);
    }
    KernelDesc desc = spmmDesc(g, f, false, ctx.costs);
    desc.name = "gspmm_mean";
    Tensor y;
    runKernel(ctx, desc, [&] {
        y = kernels::spmm(g, x->value, kernels::ReduceOp::Mean);
    });
    // Scatter-form backward over the same adjacency: each edge's
    // weight is the inverse degree of its destination row.
    auto w_bwd = std::make_shared<std::vector<float>>();
    runPrep(ctx,
            static_cast<double>(g.numRows) +
                static_cast<double>(g.numEdges()),
            [&] {
                const std::vector<float> inv = invDegree(g);
                w_bwd->resize(static_cast<size_t>(g.numEdges()));
                for (NodeId r = 0; r < g.numRows; ++r)
                    for (EdgeId e = g.indptr[r]; e < g.indptr[r + 1];
                         ++e)
                        (*w_bwd)[static_cast<size_t>(e)] =
                            inv[static_cast<size_t>(r)];
            });
    return core::ag::makeOp(
        "dglx.spmm_mean", std::move(y), {x},
        [csc = std::move(csc), w_bwd = std::move(w_bwd), x,
         ctx](core::ag::Node &n) {
            if (x->requiresGrad)
                x->accumulateGrad(gspmmScatter(*csc, n.grad,
                                               w_bwd->data(), ctx));
        });
}

core::ag::Var
gemmVar(const core::ag::Var &a, const core::ag::Var &b,
        const KernelCtx &ctx)
{
    Tensor y = gemm(a->value, b->value, ctx);
    return core::ag::makeOp(
        "dglx.gemm", std::move(y), {a, b},
        [a, b, ctx](core::ag::Node &n) {
            if (a->requiresGrad) {
                Tensor ga;
                runKernel(ctx,
                          gemmDesc(n.grad.rows(), n.grad.cols(),
                                   b->value.rows(), ctx.costs),
                          [&] {
                              ga = core::ops::matmulTb(n.grad,
                                                       b->value);
                          });
                a->accumulateGrad(ga);
            }
            if (b->requiresGrad) {
                Tensor gb;
                runKernel(ctx,
                          gemmDesc(a->value.cols(), a->value.rows(),
                                   n.grad.cols(), ctx.costs),
                          [&] {
                              gb = core::ops::matmulTa(a->value,
                                                       n.grad);
                          });
                b->accumulateGrad(gb);
            }
        });
}

core::Tensor
segmentSumRows(const graph::CsrGraph &csc, const Tensor &x,
               const KernelCtx &ctx)
{
    GNNBENCH_CHECK(x.rows() == csc.numEdges(),
                   "segmentSumRows: one row per edge required");
    Tensor out;
    runKernel(ctx,
              elemDesc("segment_sum",
                       static_cast<double>(x.numel()), ctx.costs),
              [&] { out = kernels::segmentSumRows(csc, x); });
    return out;
}

core::Tensor
scatterSumCols(const graph::CsrGraph &csc, const Tensor &x,
               const KernelCtx &ctx)
{
    GNNBENCH_CHECK(x.rows() == csc.numEdges(),
                   "scatterSumCols: one row per edge required");
    Tensor out;
    runKernel(ctx,
              elemDesc("scatter_sum_cols",
                       static_cast<double>(x.numel()), ctx.costs),
              [&] { out = kernels::scatterSumCols(csc, x); });
    return out;
}

core::ag::Var
gsddmmAddVar(std::shared_ptr<const graph::CsrGraph> csc,
             const core::ag::Var &a_dst, const core::ag::Var &b_src,
             const KernelCtx &ctx)
{
    Tensor y = gsddmmAdd(*csc, a_dst->value, b_src->value, ctx);
    return core::ag::makeOp(
        "dglx.gsddmm_add", std::move(y), {a_dst, b_src},
        [csc = std::move(csc), a_dst, b_src,
         ctx](core::ag::Node &n) {
            if (a_dst->requiresGrad)
                a_dst->accumulateGrad(
                    segmentSumRows(*csc, n.grad, ctx));
            if (b_src->requiresGrad)
                b_src->accumulateGrad(
                    scatterSumCols(*csc, n.grad, ctx));
        });
}

core::ag::Var
edgeSoftmaxVar(std::shared_ptr<const graph::CsrGraph> csc,
               const core::ag::Var &scores, const KernelCtx &ctx)
{
    Tensor y = edgeSoftmax(*csc, scores->value, ctx);
    return core::ag::makeOp(
        "dglx.edge_softmax", std::move(y), {scores},
        [csc = std::move(csc), scores, ctx](core::ag::Node &n) {
            if (!scores->requiresGrad)
                return;
            // dx[e] = y[e] * (g[e] - sum over the segment of y g).
            const Tensor &y_out = n.value;
            Tensor gx;
            runKernel(
                ctx,
                elemDesc("edge_softmax_bwd",
                         3.0 * static_cast<double>(y_out.numel()),
                         ctx.costs),
                [&] {
                    gx = Tensor::empty(y_out.rows(), y_out.cols());
                    const int64_t h = y_out.cols();
                    for (NodeId d = 0; d < csc->numRows; ++d) {
                        for (int64_t j = 0; j < h; ++j) {
                            double dot = 0.0;
                            for (EdgeId e = csc->indptr[d];
                                 e < csc->indptr[d + 1]; ++e)
                                dot += y_out(e, j) * n.grad(e, j);
                            for (EdgeId e = csc->indptr[d];
                                 e < csc->indptr[d + 1]; ++e)
                                gx(e, j) = y_out(e, j) *
                                           (n.grad(e, j) -
                                            static_cast<float>(dot));
                        }
                    }
                });
            scores->accumulateGrad(gx);
        });
}

core::ag::Var
gspmmEdgeScalarVar(std::shared_ptr<const graph::CsrGraph> csc,
                   const core::ag::Var &x, const core::ag::Var &att,
                   const KernelCtx &ctx)
{
    Tensor y = gspmmEdgeScalar(*csc, x->value, att->value, ctx);
    return core::ag::makeOp(
        "dglx.gspmm_edge", std::move(y), {x, att},
        [csc = std::move(csc), x, att, ctx](core::ag::Node &n) {
            if (att->requiresGrad) {
                // d att[e] = <grad[dst(e)], x[src(e)]>.
                att->accumulateGrad(
                    gsddmmDot(*csc, n.grad, x->value, ctx));
            }
            if (x->requiresGrad) {
                // d x[s] = sum over src(e)=s of att[e] * grad[dst(e)].
                std::vector<float> w(
                    static_cast<size_t>(csc->numEdges()));
                for (EdgeId e = 0; e < csc->numEdges(); ++e)
                    w[e] = att->value(e, 0);
                x->accumulateGrad(
                    gspmmScatter(*csc, n.grad, w.data(), ctx));
            }
        });
}

core::ag::Var
gsddmmAttnV2Var(std::shared_ptr<const graph::CsrGraph> csc,
                const core::ag::Var &z_dst, const core::ag::Var &z_src,
                const core::ag::Var &attn_vec, float negative_slope,
                const KernelCtx &ctx)
{
    Tensor y = gsddmmAttnV2(*csc, z_dst->value, z_src->value,
                            attn_vec->value, negative_slope, ctx);
    return core::ag::makeOp(
        "dglx.gsddmm_attn_v2", std::move(y),
        {z_dst, z_src, attn_vec},
        [csc = std::move(csc), z_dst, z_src, attn_vec, negative_slope,
         ctx](core::ag::Node &n) {
            // Fused backward: per-edge pre-activations are recomputed
            // on the fly (no E x F materialization, like forward).
            const int64_t f = z_dst->value.cols();
            Tensor g_dst(z_dst->value.rows(), f);
            Tensor g_src(z_src->value.rows(), f);
            Tensor g_attn(1, f);
            KernelDesc d = sddmmDesc(*csc, f, ctx.costs);
            d.name = "gsddmm_attn_v2_bwd";
            d.flops *= 3.0;
            runKernel(ctx, d, [&] {
                const float *a = attn_vec->value.data();
                for (NodeId dst = 0; dst < csc->numRows; ++dst) {
                    const float *zd = z_dst->value.row(dst);
                    float *gd = g_dst.row(dst);
                    for (EdgeId e = csc->indptr[dst];
                         e < csc->indptr[dst + 1]; ++e) {
                        const NodeId s = csc->indices[e];
                        const float *zs = z_src->value.row(s);
                        float *gs = g_src.row(s);
                        const float ge = n.grad(e, 0);
                        for (int64_t j = 0; j < f; ++j) {
                            const float pre = zd[j] + zs[j];
                            const float act =
                                pre < 0.0f ? pre * negative_slope
                                           : pre;
                            const float slope =
                                pre < 0.0f ? negative_slope : 1.0f;
                            const float d_pre = ge * a[j] * slope;
                            gd[j] += d_pre;
                            gs[j] += d_pre;
                            g_attn(0, j) += ge * act;
                        }
                    }
                }
            });
            if (z_dst->requiresGrad)
                z_dst->accumulateGrad(g_dst);
            if (z_src->requiresGrad)
                z_src->accumulateGrad(g_src);
            if (attn_vec->requiresGrad)
                attn_vec->accumulateGrad(g_attn);
        });
}

namespace {

/** Charge one elementwise kernel pass over n elements. */
void
chargeElem(const KernelCtx &ctx, double n)
{
    if (!ctx.session || !ctx.onGpu())
        return;
    KernelDesc d = elemDesc("elementwise", n, ctx.costs);
    ctx.session->chargeGpuKernel(d);
}

/**
 * Wrap a core autograd elementwise op so that its forward runs under
 * runKernel (wall excluded on GPU, modeled time charged) and its
 * backward charges one more elementwise pass.
 */
core::ag::Var
elemWrap(const KernelCtx &ctx,
         const std::function<core::ag::Var()> &build)
{
    if (!ctx.session || !ctx.onGpu())
        return build();
    core::Timer timer;
    core::ag::Var out = build();
    ctx.session->excludeWall(timer.elapsed());
    {
        chargeElem(ctx, static_cast<double>(out->value.numel()));
        if (out->requiresGrad && out->backwardFn) {
            auto inner = std::move(out->backwardFn);
            auto ctx_copy = ctx;
            out->backwardFn = [inner = std::move(inner),
                               ctx_copy](core::ag::Node &n) {
                core::Timer t;
                inner(n);
                ctx_copy.session->excludeWall(t.elapsed());
                chargeElem(ctx_copy,
                           static_cast<double>(n.value.numel()));
            };
        }
    }
    return out;
}

} // namespace

core::ag::Var
elemVar(const KernelCtx &ctx,
        const std::function<core::ag::Var()> &build)
{
    return elemWrap(ctx, build);
}

core::ag::Var
addVar(const core::ag::Var &a, const core::ag::Var &b,
       const KernelCtx &ctx)
{
    return elemWrap(ctx, [&] { return core::ag::add(a, b); });
}

core::ag::Var
addBiasVar(const core::ag::Var &x, const core::ag::Var &bias,
           const KernelCtx &ctx)
{
    return elemWrap(ctx, [&] { return core::ag::addBias(x, bias); });
}

core::ag::Var
rowScaleVar(const core::ag::Var &x, std::vector<float> s,
            const KernelCtx &ctx)
{
    return elemWrap(ctx, [&] {
        return core::ag::rowScale(x, std::move(s));
    });
}

core::ag::Var
reluVar(const core::ag::Var &x, const KernelCtx &ctx)
{
    return elemWrap(ctx, [&] { return core::ag::relu(x); });
}

core::ag::Var
scaleVar(const core::ag::Var &x, float alpha, const KernelCtx &ctx)
{
    return elemWrap(ctx, [&] { return core::ag::scale(x, alpha); });
}

} // namespace dglx
} // namespace gnnbench
