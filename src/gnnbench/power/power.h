/**
 * @file
 * Power and energy models.
 *
 * The paper measures CPU energy through Intel RAPL and GPU power
 * through pynvml (both via CodeCarbon).  Offline we substitute
 * activity-proportional power models calibrated to the paper's
 * hardware (dual Xeon Silver 4114, 2 x 85 W TDP; Quadro RTX 8000,
 * 260 W TDP).  The paper itself only draws *relative* conclusions
 * from its power numbers, which is exactly what such a model
 * preserves.
 */

#ifndef GNNBENCH_POWER_POWER_H
#define GNNBENCH_POWER_POWER_H

#include "gnnbench/core/common.h"

namespace gnnbench {
namespace power {

/** Calibration constants of the power model. */
struct PowerSpec
{
    /** Package idle power of both sockets plus DRAM, watts. */
    double cpuIdle = 40.0;
    /** Full-load package power (2 x 85 W TDP), watts. */
    double cpuActive = 170.0;
    /** GPU idle board power, watts. */
    double gpuIdle = 25.0;
    /** GPU board power limit (RTX 8000 TDP), watts. */
    double gpuMax = 260.0;
    /** CPU activity while driving PCIe DMA transfers. */
    double xferCpuUtil = 0.15;
    /** GPU activity while receiving PCIe DMA transfers. */
    double xferGpuUtil = 0.10;
};

/**
 * Activity within one accounting interval: how long each subsystem
 * was busy.  The interval's virtual duration is the sum of the three
 * busy components (execution is synchronous, as in the paper's
 * breakdowns).
 */
struct ActivitySlice
{
    double cpuBusySeconds = 0.0;
    double gpuBusySeconds = 0.0;
    /** ∫ utilization dt over the GPU-busy part (<= gpuBusySeconds). */
    double gpuUtilSeconds = 0.0;
    double xferSeconds = 0.0;

    double
    seconds() const
    {
        return cpuBusySeconds + gpuBusySeconds + xferSeconds;
    }

    ActivitySlice &operator+=(const ActivitySlice &other);
};

/** Energy of one interval or run. */
struct EnergyReport
{
    double seconds = 0.0;
    double cpuJoules = 0.0;
    double gpuJoules = 0.0;

    double joules() const { return cpuJoules + gpuJoules; }
    double
    avgWatts() const
    {
        return seconds > 0.0 ? joules() / seconds : 0.0;
    }

    EnergyReport &operator+=(const EnergyReport &other);
};

/** Activity-proportional power model for one run configuration. */
class PowerModel
{
  public:
    /**
     * @param gpu_present whether the run uses the GPU at all; when
     * false no GPU power (not even idle) is accounted, mirroring a
     * meter that only tracks utilized devices.
     */
    PowerModel(const PowerSpec &spec, bool gpu_present);

    /** Instantaneous CPU package power at the given utilization. */
    double cpuPower(double utilization) const;

    /** Instantaneous GPU board power at the given utilization. */
    double gpuPower(double utilization) const;

    /** Integrate energy over one activity slice. */
    EnergyReport energyOf(const ActivitySlice &slice) const;

    bool gpuPresent() const { return gpuPresent_; }
    const PowerSpec &spec() const { return spec_; }

  private:
    PowerSpec spec_;
    bool gpuPresent_;
};

} // namespace power
} // namespace gnnbench

#endif // GNNBENCH_POWER_POWER_H
