#include "gnnbench/power/power.h"

#include <algorithm>

namespace gnnbench {
namespace power {

ActivitySlice &
ActivitySlice::operator+=(const ActivitySlice &other)
{
    cpuBusySeconds += other.cpuBusySeconds;
    gpuBusySeconds += other.gpuBusySeconds;
    gpuUtilSeconds += other.gpuUtilSeconds;
    xferSeconds += other.xferSeconds;
    return *this;
}

EnergyReport &
EnergyReport::operator+=(const EnergyReport &other)
{
    seconds += other.seconds;
    cpuJoules += other.cpuJoules;
    gpuJoules += other.gpuJoules;
    return *this;
}

PowerModel::PowerModel(const PowerSpec &spec, bool gpu_present)
    : spec_(spec), gpuPresent_(gpu_present)
{
    GNNBENCH_CHECK(spec.cpuActive >= spec.cpuIdle &&
                       spec.gpuMax >= spec.gpuIdle,
                   "power spec: active power below idle");
}

double
PowerModel::cpuPower(double utilization) const
{
    const double u = std::clamp(utilization, 0.0, 1.0);
    return spec_.cpuIdle + u * (spec_.cpuActive - spec_.cpuIdle);
}

double
PowerModel::gpuPower(double utilization) const
{
    if (!gpuPresent_)
        return 0.0;
    const double u = std::clamp(utilization, 0.0, 1.0);
    return spec_.gpuIdle + u * (spec_.gpuMax - spec_.gpuIdle);
}

EnergyReport
PowerModel::energyOf(const ActivitySlice &slice) const
{
    EnergyReport e;
    e.seconds = slice.seconds();

    // CPU: full tilt while executing host kernels, idle while the
    // (synchronous) GPU kernels run, lightly busy while driving DMA.
    e.cpuJoules = slice.cpuBusySeconds * cpuPower(1.0) +
                  slice.gpuBusySeconds * cpuPower(0.0) +
                  slice.xferSeconds * cpuPower(spec_.xferCpuUtil);

    if (gpuPresent_) {
        // GPU: idle baseline over the whole interval plus dynamic
        // power proportional to integrated kernel utilization and a
        // small dynamic share during transfers.
        const double dynamic_range = spec_.gpuMax - spec_.gpuIdle;
        e.gpuJoules = e.seconds * spec_.gpuIdle +
                      slice.gpuUtilSeconds * dynamic_range +
                      slice.xferSeconds * spec_.xferGpuUtil *
                          dynamic_range;
    }
    return e;
}

} // namespace power
} // namespace gnnbench
