/**
 * @file
 * A CodeCarbon-style energy meter.
 *
 * CodeCarbon samples instantaneous power at a fixed interval (the
 * paper uses 0.1 s) and integrates power x dt.  EnergyMeter does the
 * same over the *virtual* timeline: activity slices are appended as
 * the run progresses, and the meter can either integrate them exactly
 * or produce the discretized power trace a sampling meter would see.
 */

#ifndef GNNBENCH_POWER_ENERGY_METER_H
#define GNNBENCH_POWER_ENERGY_METER_H

#include <vector>

#include "gnnbench/power/power.h"

namespace gnnbench {
namespace power {

/** One sample of the discretized power trace. */
struct PowerSample
{
    double timeSeconds = 0.0;   ///< virtual time at the sample
    double cpuWatts = 0.0;
    double gpuWatts = 0.0;

    double watts() const { return cpuWatts + gpuWatts; }
};

/** Integrating, optionally-sampling energy meter. */
class EnergyMeter
{
  public:
    /**
     * @param interval sampling interval in (virtual) seconds; the
     * paper configures CodeCarbon to 0.1 s.
     */
    explicit EnergyMeter(const PowerModel &model,
                         double interval = 0.1);

    /** Append one activity slice to the timeline. */
    void record(const ActivitySlice &slice);

    /** Exact integrated energy over everything recorded so far. */
    EnergyReport total() const { return total_; }

    /** Total virtual time recorded. */
    double elapsedSeconds() const { return elapsed_; }

    /**
     * The discretized power trace a sampling meter would record:
     * one PowerSample per interval, power piecewise constant per
     * slice (each slice's average power).
     */
    std::vector<PowerSample> sampledTrace() const;

    /**
     * Energy estimated from the sampled trace (power x interval),
     * i.e. what CodeCarbon reports.  Approaches total() as the
     * interval shrinks.
     */
    EnergyReport sampledEnergy() const;

    const PowerModel &model() const { return model_; }

  private:
    struct Segment
    {
        double start;    ///< virtual start time
        double duration;
        double cpuWatts; ///< average power within the segment
        double gpuWatts;
    };

    PowerModel model_;
    double interval_;
    double elapsed_ = 0.0;
    EnergyReport total_;
    std::vector<Segment> segments_;
};

} // namespace power
} // namespace gnnbench

#endif // GNNBENCH_POWER_ENERGY_METER_H
