#include "gnnbench/power/gpsup.h"

namespace gnnbench {
namespace power {

GpsUpMetrics
gpsup(double baseline_seconds, double baseline_joules,
      double optimized_seconds, double optimized_joules)
{
    GNNBENCH_CHECK(baseline_seconds > 0.0 && optimized_seconds > 0.0 &&
                       baseline_joules > 0.0 && optimized_joules > 0.0,
                   "gpsup: non-positive inputs");
    GpsUpMetrics m;
    m.speedup = baseline_seconds / optimized_seconds;
    m.greenup = baseline_joules / optimized_joules;
    m.powerup = (optimized_joules / optimized_seconds) /
                (baseline_joules / baseline_seconds);
    return m;
}

GpsUpMetrics
gpsup(const EnergyReport &baseline, const EnergyReport &optimized)
{
    return gpsup(baseline.seconds, baseline.joules(), optimized.seconds,
                 optimized.joules());
}

} // namespace power
} // namespace gnnbench
