/**
 * @file
 * GPS-UP (Greenup, Powerup, Speedup) efficiency metrics
 * [Abdulsalam et al., IGSC 2015], used by the paper's Figure 20 to
 * compare GPU/UVA-based sampling against the CPU-sampling baseline.
 */

#ifndef GNNBENCH_POWER_GPSUP_H
#define GNNBENCH_POWER_GPSUP_H

#include "gnnbench/power/power.h"

namespace gnnbench {
namespace power {

/** The three GPS-UP ratios of an optimized run vs. a baseline. */
struct GpsUpMetrics
{
    double speedup = 0.0;  ///< T_baseline / T_optimized
    double greenup = 0.0;  ///< E_baseline / E_optimized
    double powerup = 0.0;  ///< P_optimized / P_baseline
};

/**
 * Compute GPS-UP from (time, energy) of the baseline and optimized
 * runs.  Satisfies Powerup == Speedup / Greenup by construction.
 */
GpsUpMetrics gpsup(double baseline_seconds, double baseline_joules,
                   double optimized_seconds, double optimized_joules);

/** Convenience overload over EnergyReports. */
GpsUpMetrics gpsup(const EnergyReport &baseline,
                   const EnergyReport &optimized);

} // namespace power
} // namespace gnnbench

#endif // GNNBENCH_POWER_GPSUP_H
