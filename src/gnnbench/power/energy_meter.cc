#include "gnnbench/power/energy_meter.h"

namespace gnnbench {
namespace power {

EnergyMeter::EnergyMeter(const PowerModel &model, double interval)
    : model_(model), interval_(interval)
{
    GNNBENCH_CHECK(interval > 0.0, "meter interval must be positive");
}

void
EnergyMeter::record(const ActivitySlice &slice)
{
    const double dur = slice.seconds();
    if (dur <= 0.0)
        return;
    const EnergyReport e = model_.energyOf(slice);
    segments_.push_back(Segment{elapsed_, dur, e.cpuJoules / dur,
                                e.gpuJoules / dur});
    elapsed_ += dur;
    total_ += e;
}

std::vector<PowerSample>
EnergyMeter::sampledTrace() const
{
    std::vector<PowerSample> trace;
    if (segments_.empty())
        return trace;
    size_t seg = 0;
    for (double t = interval_; t <= elapsed_; t += interval_) {
        // Advance to the segment containing sample time t (sample
        // reflects the power just before the sampling instant, like a
        // counter read).
        while (seg + 1 < segments_.size() &&
               segments_[seg].start + segments_[seg].duration < t) {
            ++seg;
        }
        trace.push_back(PowerSample{t, segments_[seg].cpuWatts,
                                    segments_[seg].gpuWatts});
    }
    return trace;
}

EnergyReport
EnergyMeter::sampledEnergy() const
{
    EnergyReport e;
    for (const auto &s : sampledTrace()) {
        e.seconds += interval_;
        e.cpuJoules += s.cpuWatts * interval_;
        e.gpuJoules += s.gpuWatts * interval_;
    }
    return e;
}

} // namespace power
} // namespace gnnbench
