#include "gnnbench/sampling/subgraph.h"

#include "gnnbench/core/parallel.h"

namespace gnnbench {
namespace sampling {

uint64_t
Block::structureBytes() const
{
    return srcNodes.size() * sizeof(NodeId) +
           dstNodes.size() * sizeof(NodeId) +
           csc.indptr.size() * sizeof(EdgeId) +
           csc.indices.size() * sizeof(NodeId);
}

void
Block::validate() const
{
    GNNBENCH_CHECK(dstNodes.size() <= srcNodes.size(),
                   "block: more dst than src nodes");
    for (size_t i = 0; i < dstNodes.size(); ++i)
        GNNBENCH_CHECK(srcNodes[i] == dstNodes[i],
                       "block: dst nodes must prefix src nodes");
    GNNBENCH_CHECK(csc.numRows ==
                       static_cast<NodeId>(dstNodes.size()),
                   "block: csc rows != |dst|");
    GNNBENCH_CHECK(csc.numCols ==
                       static_cast<NodeId>(srcNodes.size()),
                   "block: csc cols != |src|");
    csc.validate();
}

uint64_t
NeighborSample::structureBytes() const
{
    uint64_t bytes = seeds.size() * sizeof(NodeId);
    for (const auto &b : blocks)
        bytes += b.structureBytes();
    return bytes;
}

void
NeighborSample::validate() const
{
    GNNBENCH_CHECK(!blocks.empty(), "neighbor sample without blocks");
    for (const auto &b : blocks)
        b.validate();
    // Layer wiring: layer l's dst nodes are layer l+1's src nodes,
    // and the last layer's dst nodes are the seeds.
    for (size_t l = 0; l + 1 < blocks.size(); ++l)
        GNNBENCH_CHECK(blocks[l].dstNodes == blocks[l + 1].srcNodes,
                       "neighbor sample: layer wiring broken at ", l);
    GNNBENCH_CHECK(blocks.back().dstNodes == seeds,
                   "neighbor sample: seeds mismatch");
}

NodeId
LayerSample::isolatedDstCount() const
{
    return core::parallel::parallelReduce(
        0, csc.numRows, 1 << 12, static_cast<NodeId>(0),
        [&](int64_t d0, int64_t d1) {
            NodeId part = 0;
            for (int64_t d = d0; d < d1; ++d)
                if (csc.degree(static_cast<NodeId>(d)) == 0)
                    ++part;
            return part;
        },
        [](NodeId a, NodeId b) { return a + b; });
}

uint64_t
LayerSample::structureBytes() const
{
    return (srcNodes.size() + dstNodes.size()) * sizeof(NodeId) +
           csc.indptr.size() * sizeof(EdgeId) +
           csc.indices.size() * sizeof(NodeId) +
           edgeWeights.size() * sizeof(float);
}

void
LayerSample::validate() const
{
    GNNBENCH_CHECK(csc.numRows ==
                       static_cast<NodeId>(dstNodes.size()),
                   "layer sample: csc rows != |dst|");
    GNNBENCH_CHECK(csc.numCols ==
                       static_cast<NodeId>(srcNodes.size()),
                   "layer sample: csc cols != |src|");
    GNNBENCH_CHECK(edgeWeights.size() ==
                       static_cast<size_t>(csc.numEdges()),
                   "layer sample: one weight per edge required");
    for (float w : edgeWeights)
        GNNBENCH_CHECK(w > 0.0f, "layer sample: weights positive");
    csc.validate();
}

void
LayerWiseSample::validate() const
{
    GNNBENCH_CHECK(!layers.empty(), "layer-wise sample empty");
    for (const auto &l : layers)
        l.validate();
    for (size_t l = 0; l + 1 < layers.size(); ++l)
        GNNBENCH_CHECK(layers[l].dstNodes == layers[l + 1].srcNodes,
                       "layer-wise sample: wiring broken at ", l);
    GNNBENCH_CHECK(layers.back().dstNodes == seeds,
                   "layer-wise sample: seeds mismatch");
}

uint64_t
InducedSample::structureBytes() const
{
    return nodes.size() * sizeof(NodeId) +
           adj.indptr.size() * sizeof(EdgeId) +
           adj.indices.size() * sizeof(NodeId);
}

void
InducedSample::validate() const
{
    GNNBENCH_CHECK(adj.numRows == adj.numCols &&
                       adj.numRows ==
                           static_cast<NodeId>(nodes.size()),
                   "induced sample: adjacency/node count mismatch");
    adj.validate();
}

} // namespace sampling
} // namespace gnnbench
