/**
 * @file
 * Multi-worker prefetching pipeline shared by the framework
 * dataloaders.
 *
 * Prefetcher<Batch> mirrors the num_workers execution model of
 * torch.utils.data.DataLoader (used by both DGL and PyG): N worker
 * threads run sampler producers ahead of the consumer, buffering up
 * to @p depth finished batches per worker.  Delivery order is the
 * serial batch order — worker w produces global batches w, w+N,
 * w+2N, ... into its own bounded queue, and next() round-robins the
 * queues — so training consumes batch 0, 1, 2, ... regardless of
 * which worker finished first.
 *
 * Worker threads are marked with core::parallel::WorkerThreadScope:
 * any parallelFor inside a producer collapses to the serial path, so
 * each worker occupies one core, exactly like a DataLoader worker
 * process.  Per-worker busy time (seconds spent inside the producer,
 * excluding queue waits) is recorded for the scaling ablation's
 * pipeline-throughput metric.
 *
 * Observability: every queue shares one QueueStats tally (depth,
 * enqueue/dequeue blocking) that is flushed into the process metrics
 * registry at shutdown under "prefetch.*"; when tracing is enabled,
 * each worker names its lane "<tag>/w<k>" and wraps each batch
 * production in a "batch <i>" trace event, so the pipeline's overlap
 * is visible in Perfetto.
 *
 * Shutdown is always clean: shutdown() closes every queue — which
 * unblocks producers stuck in push() — and joins all threads.  The
 * destructor calls shutdown(), so destroying a loader mid-epoch
 * (early training exit) never leaks a detached thread.  A producer
 * exception is captured and rethrown from next() on the consumer
 * thread, after the batches that preceded it have been delivered.
 */

#ifndef GNNBENCH_SAMPLING_PREFETCH_H
#define GNNBENCH_SAMPLING_PREFETCH_H

#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gnnbench/core/parallel.h"
#include "gnnbench/core/timer.h"
#include "gnnbench/profiling/metrics_registry.h"
#include "gnnbench/profiling/trace.h"

namespace gnnbench {
namespace sampling {

template <typename Batch>
class Prefetcher
{
  public:
    /** Produces the batch with the given global index. */
    using Producer = std::function<Batch(int64_t)>;

    /**
     * Start one thread per producer.  Producer w is invoked for
     * batch indices w, w + W, w + 2W, ... (W = producers.size());
     * each must be safe to run on its own thread (samplers: a clone
     * with a private RNG stream).
     *
     * @param lane_tag prefix for the workers' trace-lane names
     *   ("<tag>/w<k>"), e.g. "dgl-neighbor".
     */
    Prefetcher(std::vector<Producer> producers, int64_t num_batches,
               int depth, std::string lane_tag = "worker")
        : numBatches_(num_batches), laneTag_(std::move(lane_tag)),
          busySeconds_(producers.size(), 0.0),
          errors_(producers.size())
    {
        GNNBENCH_CHECK(!producers.empty(),
                       "prefetcher needs at least one worker");
        GNNBENCH_CHECK(depth > 0, "prefetch depth must be positive");
        const size_t workers = producers.size();
        queues_.reserve(workers);
        for (size_t w = 0; w < workers; ++w)
            queues_.push_back(
                std::make_unique<core::parallel::BoundedQueue<Batch>>(
                    static_cast<size_t>(depth), &queueStats_));
        threads_.reserve(workers);
        for (size_t w = 0; w < workers; ++w)
            threads_.emplace_back(
                [this, w, producer = std::move(producers[w])] {
                    runWorker(w, producer);
                });
    }

    /**
     * Inline (num_workers == 0) mode: no worker threads; next() runs
     * @p producer for the next batch index on the calling thread,
     * mirroring torch DataLoader(num_workers=0).  The producer sees
     * the same batch indices as the threaded mode, so a producer
     * whose randomness is a pure function of the batch index yields
     * bit-identical batches for any worker count.
     * workerBusySeconds() is empty and queue statistics stay zero.
     */
    Prefetcher(Producer producer, int64_t num_batches,
               std::string lane_tag = "inline")
        : numBatches_(num_batches), laneTag_(std::move(lane_tag)),
          inlineProducer_(std::move(producer))
    {
        GNNBENCH_CHECK(static_cast<bool>(inlineProducer_),
                       "inline prefetcher needs a producer");
    }

    ~Prefetcher() { shutdown(); }

    Prefetcher(const Prefetcher &) = delete;
    Prefetcher &operator=(const Prefetcher &) = delete;

    /**
     * The next batch in serial order; empty once all batches were
     * delivered or after shutdown().  Rethrows a producer exception
     * at the position of the batch that raised it.
     */
    std::optional<Batch>
    next()
    {
        if (nextBatch_ >= numBatches_)
            return std::nullopt;
        if (inlineProducer_) {
            profiling::TraceRecorder &trace =
                profiling::TraceRecorder::global();
            std::optional<Batch> batch;
            {
                profiling::TraceScope ts(
                    trace, "batch " + std::to_string(nextBatch_),
                    "prefetch");
                batch.emplace(inlineProducer_(nextBatch_));
            }
            ++nextBatch_;
            return batch;
        }
        const size_t w =
            static_cast<size_t>(nextBatch_ % queues_.size());
        std::optional<Batch> item = queues_[w]->pop();
        if (!item) {
            // The worker's queue closed early: either its producer
            // threw, or shutdown() raced this pop.
            std::lock_guard lock(errorMutex_);
            if (errors_[w]) {
                std::exception_ptr e = errors_[w];
                errors_[w] = nullptr;
                std::rethrow_exception(e);
            }
            return std::nullopt;
        }
        ++nextBatch_;
        return item;
    }

    /** Total batches the pipeline was configured to produce. */
    int64_t numBatches() const { return numBatches_; }

    /**
     * Stop producing and join all workers (idempotent).  Producers
     * blocked on a full queue observe the close and exit; a batch
     * mid-production is finished, then discarded.  Queue statistics
     * are flushed into the metrics registry here, once.
     */
    void
    shutdown()
    {
        if (joined_)
            return;
        for (auto &q : queues_)
            q->close();
        for (auto &t : threads_)
            if (t.joinable())
                t.join();
        joined_ = true;
        flushQueueMetrics();
    }

    /**
     * Seconds each worker spent inside its producer (joins first).
     * The maximum over workers is the pipeline's critical path: on a
     * machine with >= W free cores, epoch sampling time approaches
     * max(busy) instead of sum(busy).
     */
    const std::vector<double> &
    workerBusySeconds()
    {
        shutdown();
        return busySeconds_;
    }

    /** Aggregate queue statistics across this pipeline's queues. */
    const core::parallel::QueueStats &
    queueStats() const
    {
        return queueStats_;
    }

  private:
    void
    runWorker(size_t w, const Producer &producer)
    {
        // One core per worker: nested parallelFor runs serially.
        core::parallel::WorkerThreadScope scope;
        profiling::TraceRecorder &trace =
            profiling::TraceRecorder::global();
        trace.setThreadLaneName(laneTag_ + "/w" + std::to_string(w));
        // CPU time, not wall time: excludes time this worker spent
        // descheduled while other workers shared the core(s).
        core::ThreadCpuTimer timer;
        double busy = 0.0;
        const auto stride = static_cast<int64_t>(queues_.size());
        try {
            for (int64_t i = static_cast<int64_t>(w);
                 i < numBatches_; i += stride) {
                timer.reset();
                std::optional<Batch> batch;
                {
                    profiling::TraceScope ts(
                        trace, "batch " + std::to_string(i),
                        "prefetch");
                    batch.emplace(producer(i));
                }
                busy += timer.elapsed();
                if (!queues_[w]->push(std::move(*batch)))
                    break; // shut down mid-epoch
            }
        } catch (...) {
            std::lock_guard lock(errorMutex_);
            errors_[w] = std::current_exception();
        }
        busySeconds_[w] = busy;
        profiling::flushRngDraws();
        // Signals completion (or failure) to a blocked consumer;
        // batches already queued still drain in order.
        queues_[w]->close();
    }

    /** Fold this pipeline's QueueStats into the global registry. */
    void
    flushQueueMetrics()
    {
        namespace pm = profiling;
        auto &reg = pm::MetricsRegistry::global();
        const auto &s = queueStats_;
        const uint64_t pushes = s.pushes.load();
        const uint64_t pops = s.pops.load();
        reg.counter("prefetch.batches").add(pushes);
        reg.counter("prefetch.enqueue_blocks")
            .add(s.enqueueBlocks.load());
        reg.counter("prefetch.dequeue_blocks")
            .add(s.dequeueBlocks.load());
        reg.counter("prefetch.enqueue_block_nanos")
            .add(s.enqueueBlockNanos.load());
        reg.counter("prefetch.dequeue_block_nanos")
            .add(s.dequeueBlockNanos.load());
        reg.gauge("prefetch.queue_depth_peak")
            .updateMax(static_cast<double>(s.maxDepth.load()));
        if (pops > 0)
            reg.histogram("prefetch.queue_depth",
                          {0.0, 1.0, 2.0, 4.0, 8.0, 16.0})
                .observe(static_cast<double>(s.depthSum.load()) /
                         static_cast<double>(pops));
    }

    int64_t numBatches_;
    int64_t nextBatch_ = 0;
    std::string laneTag_;
    core::parallel::QueueStats queueStats_;
    std::vector<std::unique_ptr<core::parallel::BoundedQueue<Batch>>>
        queues_;
    std::vector<std::thread> threads_;
    std::vector<double> busySeconds_;
    std::mutex errorMutex_;
    std::vector<std::exception_ptr> errors_;
    bool joined_ = false;
    /** Non-empty in inline (num_workers == 0) mode. */
    Producer inlineProducer_;
};

} // namespace sampling
} // namespace gnnbench

#endif // GNNBENCH_SAMPLING_PREFETCH_H
