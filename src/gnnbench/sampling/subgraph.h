/**
 * @file
 * Framework-independent sampled-structure types.
 *
 * Both frameworks produce the same logical structures from sampling —
 * layered bipartite blocks for neighbor sampling (DGL's "MFG"s /
 * PyG's adjacency lists) and induced subgraphs for ClusterGCN /
 * GraphSAINT — they just build them with very different machinery.
 * Keeping the output types shared lets the models and tests treat the
 * samplers interchangeably.
 */

#ifndef GNNBENCH_SAMPLING_SUBGRAPH_H
#define GNNBENCH_SAMPLING_SUBGRAPH_H

#include <vector>

#include "gnnbench/graph/csr.h"

namespace gnnbench {
namespace sampling {

/**
 * One bipartite message-flow block: messages flow from srcNodes to
 * dstNodes.  dstNodes is always a prefix of srcNodes (every target
 * node also appears as a source so self information is available),
 * matching DGL block semantics.
 */
struct Block
{
    /** Global ids of source nodes; the first dstNodes.size() entries
     *  equal dstNodes. */
    std::vector<NodeId> srcNodes;
    /** Global ids of destination (target) nodes. */
    std::vector<NodeId> dstNodes;
    /**
     * In-adjacency of the block: numRows == |dst|, numCols == |src|,
     * row d lists the local src indices sampled for destination d.
     */
    graph::CsrGraph csc;

    /** Bytes of index structure (for transfer modeling). */
    uint64_t structureBytes() const;

    /** Check all block invariants; fatal on violation. */
    void validate() const;
};

/** Output of a neighbor sampler for one mini-batch of seeds. */
struct NeighborSample
{
    std::vector<NodeId> seeds;
    /** blocks[0] is the input-side layer (applied first). */
    std::vector<Block> blocks;

    /** The nodes whose features must be fetched. */
    const std::vector<NodeId> &
    inputNodes() const
    {
        return blocks.front().srcNodes;
    }

    uint64_t structureBytes() const;

    void validate() const;
};

/**
 * One layer of a *layer-wise* sample (FastGCN / LADIES): unlike
 * neighbor-sampled blocks, source and destination sets are sampled
 * independently, so dstNodes is NOT a prefix of srcNodes and
 * destinations can end up isolated (FastGCN's known sparsity issue).
 * Edges carry importance weights 1/(q(v) * t) for unbiased estimates.
 */
struct LayerSample
{
    std::vector<NodeId> srcNodes;  ///< sampled source set (global)
    std::vector<NodeId> dstNodes;  ///< destination set (global)
    /** In-adjacency: rows = dst, cols index srcNodes. */
    graph::CsrGraph csc;
    /** Importance weight per edge, aligned with csc traversal. */
    std::vector<float> edgeWeights;

    /** Destinations with no sampled in-neighbor. */
    NodeId isolatedDstCount() const;

    uint64_t structureBytes() const;

    void validate() const;
};

/** Output of a layer-wise sampler for one mini-batch of seeds. */
struct LayerWiseSample
{
    std::vector<NodeId> seeds;
    /** layers[0] is the input-side layer (applied first). */
    std::vector<LayerSample> layers;

    const std::vector<NodeId> &
    inputNodes() const
    {
        return layers.front().srcNodes;
    }

    void validate() const;
};

/** Output of ClusterGCN / GraphSAINT samplers: an induced subgraph. */
struct InducedSample
{
    /** Global ids of the subgraph's nodes (position = local id). */
    std::vector<NodeId> nodes;
    /** Local induced adjacency (square). */
    graph::CsrGraph adj;

    uint64_t structureBytes() const;

    void validate() const;
};

} // namespace sampling
} // namespace gnnbench

#endif // GNNBENCH_SAMPLING_SUBGRAPH_H
