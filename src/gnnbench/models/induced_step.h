/**
 * @file
 * The per-batch training step shared by the induced-subgraph models
 * (ClusterGCN and GraphSAINT): two GCN layers over the sampled
 * subgraph, NLL loss on the batch's training nodes, Adam update.
 */

#ifndef GNNBENCH_MODELS_INDUCED_STEP_H
#define GNNBENCH_MODELS_INDUCED_STEP_H

#include "gnnbench/core/optim.h"
#include "gnnbench/dglx/nn.h"
#include "gnnbench/models/pipeline.h"
#include "gnnbench/pygx/nn.h"
#include "gnnbench/sampling/subgraph.h"

namespace gnnbench {
namespace models {

/** Local labels + the local row indices carrying training loss. */
struct BatchSupervision
{
    std::vector<int32_t> labels;
    std::vector<NodeId> lossRows;
};

/** Build local supervision for a batch of global node ids. */
inline BatchSupervision
localSupervision(const std::vector<NodeId> &nodes,
                 const std::vector<int32_t> &labels,
                 const std::vector<bool> &train_mask)
{
    BatchSupervision sup;
    sup.labels.resize(nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i) {
        sup.labels[i] = labels[nodes[i]];
        if (train_mask[nodes[i]])
            sup.lossRows.push_back(static_cast<NodeId>(i));
    }
    return sup;
}

/** One dglx training step over an induced subgraph. */
inline void
inducedStepDglx(const sampling::InducedSample &smp, core::Tensor x,
                const BatchSupervision &sup, dglx::GcnConv &layer1,
                dglx::GcnConv &layer2, core::Adam &opt,
                const dglx::KernelCtx &ctx, EpochStats &stats)
{
    if (sup.lossRows.empty())
        return;  // no supervised node sampled in this batch
    namespace ag = core::ag;
    // Per-subgraph normalization, recomputed per batch like both
    // frameworks do on sampled subgraphs.
    const std::vector<float> norm = dglx::computeGcnNorm(smp.adj);
    const std::vector<float> self = dglx::computeSelfScale(smp.adj);
    ag::Var xv = ag::leaf(std::move(x), false);
    ag::Var h = layer1.forwardInduced(smp.adj, norm, self, xv, ctx);
    h = ag::relu(h);
    ag::Var out = layer2.forwardInduced(smp.adj, norm, self, h, ctx);
    ag::Var lp = ag::logSoftmax(out);
    stats.correct += core::ops::countCorrect(out->value, sup.labels,
                                             sup.lossRows);
    stats.total += static_cast<int64_t>(sup.lossRows.size());
    ag::Var loss = ag::nllLoss(lp, sup.labels, sup.lossRows);
    stats.loss += loss->value(0, 0) *
                  static_cast<double>(sup.lossRows.size());
    opt.zeroGrad();
    ag::backward(loss);
    opt.step();
}

/** One pygx training step over an induced edge batch. */
inline void
inducedStepPygx(const pygx::EdgeBatch &batch, core::Tensor x,
                const BatchSupervision &sup, pygx::GcnConv &layer1,
                pygx::GcnConv &layer2, core::Adam &opt,
                const pygx::KernelCtx &ctx, EpochStats &stats)
{
    if (sup.lossRows.empty())
        return;
    namespace ag = core::ag;
    ag::Var xv = ag::leaf(std::move(x), false);
    ag::Var h = layer1.forwardBatch(batch, xv, ctx);
    h = ag::relu(h);
    ag::Var out = layer2.forwardBatch(batch, h, ctx);
    ag::Var lp = ag::logSoftmax(out);
    stats.correct += core::ops::countCorrect(out->value, sup.labels,
                                             sup.lossRows);
    stats.total += static_cast<int64_t>(sup.lossRows.size());
    ag::Var loss = ag::nllLoss(lp, sup.labels, sup.lossRows);
    stats.loss += loss->value(0, 0) *
                  static_cast<double>(sup.lossRows.size());
    opt.zeroGrad();
    ag::backward(loss);
    opt.step();
}

/** Dense train-membership mask from the dataset's train indices. */
inline std::vector<bool>
trainMask(NodeId num_nodes, const std::vector<NodeId> &train_idx)
{
    std::vector<bool> mask(num_nodes, false);
    for (NodeId v : train_idx)
        mask[v] = true;
    return mask;
}

} // namespace models
} // namespace gnnbench

#endif // GNNBENCH_MODELS_INDUCED_STEP_H
