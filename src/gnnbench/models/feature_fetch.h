/**
 * @file
 * Per-batch feature fetching shared by the model pipelines.
 *
 * Encapsulates the phase accounting of getting a mini-batch's node
 * features to the training device under every placement mode:
 * feature *fetching* counts as sampling (as the paper defines the
 * sampling phase), PCIe copies count as data movement, pre-loaded /
 * GPU-resident gathers run as modeled GPU kernels, and UVA reads
 * cross PCIe zero-copy.
 *
 * When the caller registered the feature matrix with the session's
 * memory hierarchy (a valid FeatureRegion), device-side gathers walk
 * the cache tiers — pre-loaded rows hit VRAM/L2, zero-copy rows pay a
 * per-tile link transaction — so preload and UVA behavior is emergent
 * from tile placement rather than hand-charged.  Without a region the
 * legacy flat-cost gather is used.
 */

#ifndef GNNBENCH_MODELS_FEATURE_FETCH_H
#define GNNBENCH_MODELS_FEATURE_FETCH_H

#include "gnnbench/core/ops.h"
#include "gnnbench/models/pipeline.h"

namespace gnnbench {
namespace models {

/**
 * Gather the feature rows of @p nodes and account the movement of
 * the gathered features plus @p structure_bytes of sampled-graph
 * structure according to @p mode.
 *
 * @param prev_train_seconds duration of the previous batch's training
 * step, used to hide transfers when @p prefetch is set.
 * @param region hierarchy registration of @p features (nullptr or
 * invalid to fall back to flat gather costs).
 */
inline core::Tensor
fetchFeatures(const core::Tensor &features,
              const std::vector<NodeId> &nodes, RunMode mode,
              bool preloaded, bool prefetch, double prev_train_seconds,
              device::Session &session,
              profiling::PhaseTracker &tracker,
              uint64_t structure_bytes,
              const device::FeatureRegion *region = nullptr)
{
    core::Tensor x;
    const uint64_t feat_bytes =
        static_cast<uint64_t>(nodes.size()) * features.cols() * 4;
    const bool tiered = region != nullptr && region->valid();

    auto gather_cpu = [&] {
        auto s = tracker.track(profiling::Phase::Sampling);
        x = core::ops::gatherRows(features, nodes);
    };
    // Device-side gather: through the cache tiers when the matrix is
    // registered, through the legacy flat kernel model otherwise.
    auto gather_gpu = [&] {
        auto s = tracker.track(profiling::Phase::Sampling);
        if (tiered) {
            core::Timer t;
            x = core::ops::gatherRows(features, nodes);
            session.excludeWall(t.elapsed());
            session.gatherFromRegion(*region, nodes,
                                     device::Placement::Device);
            return;
        }
        device::KernelDesc desc;
        desc.name = "feature_gather";
        desc.bytes = 2.0 * static_cast<double>(feat_bytes);
        desc.efficiency = 0.3;  // irregular row gather
        session.runKernel(device::DeviceType::GPU, desc, [&] {
            x = core::ops::gatherRows(features, nodes);
        });
    };

    switch (mode) {
      case RunMode::CPU:
        gather_cpu();
        break;
      case RunMode::CPUGPU:
        if (!preloaded) {
            gather_cpu();
            auto s = tracker.track(profiling::Phase::DataMovement);
            if (prefetch) {
                session.transferOverlapped(
                    feat_bytes + structure_bytes, prev_train_seconds);
            } else {
                session.transfer(feat_bytes + structure_bytes);
            }
        } else {
            {
                auto s =
                    tracker.track(profiling::Phase::DataMovement);
                session.transfer(structure_bytes);
            }
            gather_gpu();
        }
        break;
      case RunMode::GPU:
        // Graph, features, and sampled structure are all resident.
        gather_gpu();
        break;
      case RunMode::UVAGPU: {
        auto s = tracker.track(profiling::Phase::Sampling);
        core::Timer t;
        x = core::ops::gatherRows(features, nodes);
        session.excludeWall(t.elapsed());
        if (tiered)
            session.gatherFromRegion(*region, nodes,
                                     device::Placement::Host);
        else
            session.uvaAccess(feat_bytes);
        break;
      }
    }
    return x;
}

} // namespace models
} // namespace gnnbench

#endif // GNNBENCH_MODELS_FEATURE_FETCH_H
