/**
 * @file
 * Per-batch feature fetching shared by the model pipelines.
 *
 * Encapsulates the phase accounting of getting a mini-batch's node
 * features to the training device under every placement mode:
 * feature *fetching* counts as sampling (as the paper defines the
 * sampling phase), PCIe copies count as data movement, pre-loaded /
 * GPU-resident gathers run as modeled GPU kernels, and UVA reads
 * cross PCIe zero-copy.
 */

#ifndef GNNBENCH_MODELS_FEATURE_FETCH_H
#define GNNBENCH_MODELS_FEATURE_FETCH_H

#include "gnnbench/core/ops.h"
#include "gnnbench/models/pipeline.h"

namespace gnnbench {
namespace models {

/**
 * Gather the feature rows of @p nodes and account the movement of
 * the gathered features plus @p structure_bytes of sampled-graph
 * structure according to @p mode.
 *
 * @param prev_train_seconds duration of the previous batch's training
 * step, used to hide transfers when @p prefetch is set.
 */
inline core::Tensor
fetchFeatures(const core::Tensor &features,
              const std::vector<NodeId> &nodes, RunMode mode,
              bool preloaded, bool prefetch, double prev_train_seconds,
              device::Session &session,
              profiling::PhaseTracker &tracker,
              uint64_t structure_bytes)
{
    core::Tensor x;
    const uint64_t feat_bytes =
        static_cast<uint64_t>(nodes.size()) * features.cols() * 4;

    auto gather_cpu = [&] {
        auto s = tracker.track(profiling::Phase::Sampling);
        x = core::ops::gatherRows(features, nodes);
    };
    auto gather_gpu = [&] {
        auto s = tracker.track(profiling::Phase::Sampling);
        device::KernelDesc desc;
        desc.name = "feature_gather";
        desc.bytes = 2.0 * static_cast<double>(feat_bytes);
        desc.efficiency = 0.3;  // irregular row gather
        session.runKernel(device::DeviceType::GPU, desc, [&] {
            x = core::ops::gatherRows(features, nodes);
        });
    };

    switch (mode) {
      case RunMode::CPU:
        gather_cpu();
        break;
      case RunMode::CPUGPU:
        if (!preloaded) {
            gather_cpu();
            auto s = tracker.track(profiling::Phase::DataMovement);
            if (prefetch) {
                session.transferOverlapped(
                    feat_bytes + structure_bytes, prev_train_seconds);
            } else {
                session.transfer(feat_bytes + structure_bytes);
            }
        } else {
            {
                auto s =
                    tracker.track(profiling::Phase::DataMovement);
                session.transfer(structure_bytes);
            }
            gather_gpu();
        }
        break;
      case RunMode::GPU:
        // Graph, features, and sampled structure are all resident.
        gather_gpu();
        break;
      case RunMode::UVAGPU: {
        auto s = tracker.track(profiling::Phase::Sampling);
        core::Timer t;
        x = core::ops::gatherRows(features, nodes);
        session.excludeWall(t.elapsed());
        session.uvaAccess(feat_bytes);
        break;
      }
    }
    return x;
}

} // namespace models
} // namespace gnnbench

#endif // GNNBENCH_MODELS_FEATURE_FETCH_H
