/**
 * @file
 * Full-batch GraphSAGE training (paper Section 4.3, Figures 22-24):
 * a two-layer mean-aggregator SAGE trained on the entire graph
 * without sampling, on CPU or GPU, in both frameworks.  Reported per
 * epoch, averaged over several measured epochs after a warmup.
 */

#ifndef GNNBENCH_MODELS_FULLBATCH_H
#define GNNBENCH_MODELS_FULLBATCH_H

#include "gnnbench/models/pipeline.h"

namespace gnnbench {
namespace models {

/** Per-epoch metrics of a full-batch run. */
struct FullBatchResult
{
    std::string config;          ///< e.g. "DGL-GPU"
    double secondsPerEpoch = 0.0;
    power::EnergyReport energyPerEpoch;

    double
    avgWatts() const
    {
        return energyPerEpoch.avgWatts();
    }
};

/**
 * Train full-batch GraphSAGE and measure @p measured_epochs epochs
 * (after one untimed warmup epoch).
 * @param mode RunMode::CPU or RunMode::GPU.
 */
FullBatchResult trainFullBatchSage(const graph::Dataset &dataset,
                                   Framework framework, RunMode mode,
                                   int measured_epochs = 5,
                                   uint64_t seed = 1);

} // namespace models
} // namespace gnnbench

#endif // GNNBENCH_MODELS_FULLBATCH_H
