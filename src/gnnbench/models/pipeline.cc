#include "gnnbench/models/pipeline.h"

namespace gnnbench {
namespace models {

const char *
frameworkName(Framework fw)
{
    return fw == Framework::Dglx ? "DGL" : "PyG";
}

const char *
runModeName(RunMode mode)
{
    switch (mode) {
      case RunMode::CPU:
        return "CPU";
      case RunMode::CPUGPU:
        return "CPUGPU";
      case RunMode::GPU:
        return "GPU";
      case RunMode::UVAGPU:
        return "UVAGPU";
    }
    return "?";
}

std::string
configName(Framework fw, RunMode mode)
{
    return std::string(frameworkName(fw)) + "-" + runModeName(mode);
}

double
TrainResult::totalSeconds() const
{
    double total = 0.0;
    for (const auto &slice : phases)
        total += slice.seconds();
    return total;
}

TrainResult
finalizeResult(Framework fw, RunMode mode,
               const profiling::PhaseTracker &tracker,
               const power::PowerSpec &power_spec)
{
    TrainResult result;
    result.config = configName(fw, mode);
    power::ActivitySlice total;
    for (int p = 0; p < profiling::kNumPhases; ++p) {
        result.phases[p] =
            tracker.phase(static_cast<profiling::Phase>(p));
        result.workerPhases[p] =
            tracker.workerPhase(static_cast<profiling::Phase>(p));
        total += result.phases[p];
    }
    const power::PowerModel model(power_spec, usesGpu(mode));
    result.energy = model.energyOf(total);
    return result;
}

std::vector<std::vector<NodeId>>
makeBatches(const std::vector<NodeId> &ids, int batch_size,
            core::Rng &rng)
{
    GNNBENCH_CHECK(batch_size > 0, "batch size must be positive");
    std::vector<NodeId> shuffled = ids;
    rng.shuffle(shuffled);
    std::vector<std::vector<NodeId>> batches;
    for (size_t start = 0; start < shuffled.size();
         start += batch_size) {
        const size_t end =
            std::min(shuffled.size(), start + batch_size);
        batches.emplace_back(shuffled.begin() + start,
                             shuffled.begin() + end);
    }
    return batches;
}

int
saintBatchesPerEpoch(NodeId num_nodes, int32_t roots,
                     int32_t walk_length)
{
    const int64_t per_batch =
        static_cast<int64_t>(roots) * (walk_length + 1);
    return static_cast<int>(
        std::max<int64_t>(1, (num_nodes + per_batch - 1) / per_batch));
}

bool
usesGpu(RunMode mode)
{
    return mode != RunMode::CPU;
}

} // namespace models
} // namespace gnnbench
