#include "gnnbench/models/clustergcn.h"

#include "gnnbench/dglx/dataloader.h"
#include "gnnbench/dglx/sampler.h"
#include "gnnbench/models/feature_fetch.h"
#include "gnnbench/models/induced_step.h"
#include "gnnbench/pygx/dataloader.h"
#include "gnnbench/pygx/sampler.h"

namespace gnnbench {
namespace models {

using profiling::Phase;

namespace {

TrainResult
runDglx(const graph::Dataset &dataset, const TrainConfig &cfg,
        device::Session &session, profiling::PhaseTracker &tracker)
{
    core::Rng rng(cfg.seed);
    dglx::LoadedData ld;
    {
        auto s = tracker.track(Phase::DataLoading);
        ld = dglx::DataLoader::load(dataset);
    }
    const auto train_dev = usesGpu(cfg.mode)
                               ? device::DeviceType::GPU
                               : device::DeviceType::CPU;
    dglx::KernelCtx ctx{&session, train_dev, dglx::Costs{}};

    core::Rng wrng = rng.fork();
    dglx::GcnConv layer1(dataset.info.numFeatures, cfg.hiddenDim,
                         wrng);
    dglx::GcnConv layer2(cfg.hiddenDim, dataset.info.numClasses,
                         wrng);
    std::vector<core::ag::Var> params = layer1.params();
    params.insert(params.end(), layer2.params().begin(),
                  layer2.params().end());
    core::Adam opt(params, cfg.lr);

    device::FeatureRegion feat_region;
    if (usesGpu(cfg.mode)) {
        auto s = tracker.track(Phase::DataMovement);
        feat_region = session.registerRegion(ld.features.rows(),
                                             ld.features.cols() * 4);
        uint64_t bytes = layer1.paramBytes() + layer2.paramBytes();
        if (cfg.preloadFeatures) {
            bytes += ld.graph->structureBytes();
            session.preloadRegion(feat_region);
        }
        session.transfer(bytes);
        const uint64_t resident =
            bytes + (cfg.preloadFeatures ? ld.features.bytes() : 0);
        GNNBENCH_CHECK(session.reserveGpu(resident), "GPU memory");
    }

    const int32_t num_parts =
        std::min<int32_t>(cfg.numParts, dataset.numNodes() / 2);
    const int32_t per_batch =
        std::min(cfg.clustersPerBatch, num_parts);
    std::unique_ptr<dglx::ClusterSampler> sampler;
    {
        // Includes the one-time METIS-style partitioning.
        auto s = tracker.track(Phase::Sampling);
        sampler = std::make_unique<dglx::ClusterSampler>(
            *ld.graph, num_parts, rng.fork());
    }
    const int batches_per_epoch =
        std::max(1, num_parts / per_batch);

    const auto mask = trainMask(dataset.numNodes(), ld.trainIdx);
    TrainResult result;
    double prev_train_seconds = 0.0;
    for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
        EpochStats es;
        // All sampling goes through the loader (per-worker clones
        // share the partition); batch RNG streams depend only on
        // batch index, so num_workers (0 = inline) never changes
        // results.
        std::unique_ptr<dglx::InducedLoader> loader;
        {
            auto s = tracker.track(Phase::Sampling);
            loader = std::make_unique<dglx::InducedLoader>(
                dglx::makeClusterLoader(*sampler, rng, per_batch,
                                        batches_per_epoch,
                                        cfg.numWorkers,
                                        cfg.prefetchDepth));
        }
        for (int b = 0; b < batches_per_epoch; ++b) {
            sampling::InducedSample smp;
            {
                auto s = tracker.track(Phase::Sampling);
                auto got = loader->next();
                GNNBENCH_CHECK(got.has_value(),
                               "prefetch loader exhausted early");
                smp = std::move(*got);
            }
            core::Tensor x = fetchFeatures(
                ld.features, smp.nodes, cfg.mode,
                cfg.preloadFeatures, cfg.prefetch,
                prev_train_seconds, session, tracker,
                smp.structureBytes(), &feat_region);
            const auto sup =
                localSupervision(smp.nodes, ld.labels, mask);
            const auto t0 = session.snapshot();
            {
                auto s = tracker.track(Phase::Training);
                inducedStepDglx(smp, std::move(x), sup, layer1,
                                layer2, opt, ctx, es);
            }
            prev_train_seconds = device::Session::virtualSeconds(
                t0, session.snapshot());
        }
        chargeWorkerSampling(tracker, *loader);
        es.loss /= std::max<int64_t>(es.total, 1);
        result.epochs.push_back(es);
    }

    TrainResult final = finalizeResult(Framework::Dglx, cfg.mode,
                                       tracker, power::PowerSpec{});
    final.epochs = std::move(result.epochs);
    return final;
}

TrainResult
runPygx(const graph::Dataset &dataset, const TrainConfig &cfg,
        device::Session &session, profiling::PhaseTracker &tracker)
{
    core::Rng rng(cfg.seed);
    pygx::LoadedData ld;
    {
        auto s = tracker.track(Phase::DataLoading);
        ld = pygx::DataLoader::load(dataset);
    }
    const auto train_dev = usesGpu(cfg.mode)
                               ? device::DeviceType::GPU
                               : device::DeviceType::CPU;
    pygx::KernelCtx ctx{&session, train_dev, pygx::Costs{},
                        1.0 / dataset.scale};

    core::Rng wrng = rng.fork();
    pygx::GcnConv layer1(dataset.info.numFeatures, cfg.hiddenDim,
                         wrng);
    pygx::GcnConv layer2(cfg.hiddenDim, dataset.info.numClasses,
                         wrng);
    std::vector<core::ag::Var> params = layer1.params();
    params.insert(params.end(), layer2.params().begin(),
                  layer2.params().end());
    core::Adam opt(params, cfg.lr);

    device::FeatureRegion feat_region;
    if (usesGpu(cfg.mode)) {
        auto s = tracker.track(Phase::DataMovement);
        feat_region = session.registerRegion(ld.features.rows(),
                                             ld.features.cols() * 4);
        uint64_t bytes = layer1.paramBytes() + layer2.paramBytes();
        if (cfg.preloadFeatures) {
            bytes += ld.data->structureBytes();
            session.preloadRegion(feat_region);
        }
        session.transfer(bytes);
        const uint64_t resident =
            bytes + (cfg.preloadFeatures ? ld.features.bytes() : 0);
        GNNBENCH_CHECK(session.reserveGpu(resident), "GPU memory");
    }

    const int32_t num_parts =
        std::min<int32_t>(cfg.numParts, dataset.numNodes() / 2);
    const int32_t per_batch =
        std::min(cfg.clustersPerBatch, num_parts);
    std::unique_ptr<pygx::ClusterSampler> sampler;
    {
        auto s = tracker.track(Phase::Sampling);
        sampler = std::make_unique<pygx::ClusterSampler>(
            *ld.data, num_parts, rng.fork(), &session);
    }
    const int batches_per_epoch =
        std::max(1, num_parts / per_batch);

    const auto mask = trainMask(dataset.numNodes(), ld.trainIdx);
    TrainResult result;
    double prev_train_seconds = 0.0;
    for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
        EpochStats es;
        std::unique_ptr<pygx::EdgeBatchLoader> loader;
        {
            auto s = tracker.track(Phase::Sampling);
            loader = std::make_unique<pygx::EdgeBatchLoader>(
                pygx::makeClusterLoader(*sampler, rng, per_batch,
                                        batches_per_epoch,
                                        cfg.numWorkers,
                                        cfg.prefetchDepth,
                                        &session));
        }
        for (int b = 0; b < batches_per_epoch; ++b) {
            pygx::EdgeBatch batch;
            {
                auto s = tracker.track(Phase::Sampling);
                auto got = loader->next();
                GNNBENCH_CHECK(got.has_value(),
                               "prefetch loader exhausted early");
                batch = std::move(*got);
            }
            core::Tensor x = fetchFeatures(
                ld.features, batch.nodes, cfg.mode,
                cfg.preloadFeatures, cfg.prefetch,
                prev_train_seconds, session, tracker,
                batch.structureBytes(), &feat_region);
            const auto sup =
                localSupervision(batch.nodes, ld.labels, mask);
            const auto t0 = session.snapshot();
            {
                auto s = tracker.track(Phase::Training);
                inducedStepPygx(batch, std::move(x), sup, layer1,
                                layer2, opt, ctx, es);
            }
            prev_train_seconds = device::Session::virtualSeconds(
                t0, session.snapshot());
        }
        chargeWorkerSampling(tracker, *loader);
        es.loss /= std::max<int64_t>(es.total, 1);
        result.epochs.push_back(es);
    }

    TrainResult final = finalizeResult(Framework::Pygx, cfg.mode,
                                       tracker, power::PowerSpec{});
    final.epochs = std::move(result.epochs);
    return final;
}

} // namespace

TrainResult
trainClusterGcn(const graph::Dataset &dataset, const TrainConfig &cfg)
{
    GNNBENCH_CHECK(cfg.mode == RunMode::CPU ||
                       cfg.mode == RunMode::CPUGPU,
                   "ClusterGCN supports CPU and CPUGPU modes only");
    device::Session session;
    profiling::PhaseTracker tracker(session);
    if (cfg.framework == Framework::Dglx)
        return runDglx(dataset, cfg, session, tracker);
    return runPygx(dataset, cfg, session, tracker);
}

} // namespace models
} // namespace gnnbench
