/**
 * @file
 * End-to-end ClusterGCN training (Chiang et al. 2019): METIS-style
 * partitioning into 2000 clusters, mini-batches of 50 random clusters,
 * two GCN layers — the configuration of the paper's Figures 10-13.
 */

#ifndef GNNBENCH_MODELS_CLUSTERGCN_H
#define GNNBENCH_MODELS_CLUSTERGCN_H

#include "gnnbench/models/pipeline.h"

namespace gnnbench {
namespace models {

/** Train ClusterGCN; CPU and CPUGPU modes only (as benchmarked). */
TrainResult trainClusterGcn(const graph::Dataset &dataset,
                            const TrainConfig &config);

} // namespace models
} // namespace gnnbench

#endif // GNNBENCH_MODELS_CLUSTERGCN_H
