/**
 * @file
 * End-to-end GraphSAGE training (Hamilton et al. 2017) with
 * neighborhood sampling, in both frameworks and all placement modes.
 *
 * Two SAGEConv layers (mean aggregation, hidden 256, ReLU between),
 * Adam, NLL loss over each batch's seeds — the configuration of the
 * paper's Figures 6-9 (and, with preloadFeatures, Figures 18-19; with
 * GPU/UVAGPU modes, Figures 20-21).
 */

#ifndef GNNBENCH_MODELS_GRAPHSAGE_H
#define GNNBENCH_MODELS_GRAPHSAGE_H

#include "gnnbench/models/pipeline.h"

namespace gnnbench {
namespace models {

/**
 * Train GraphSAGE on @p dataset under @p config.
 * GPU/UVAGPU sampling modes are dglx-only, as in DGL.
 */
TrainResult trainGraphSage(const graph::Dataset &dataset,
                           const TrainConfig &config);

} // namespace models
} // namespace gnnbench

#endif // GNNBENCH_MODELS_GRAPHSAGE_H
