#include "gnnbench/models/fullbatch.h"

#include "gnnbench/core/optim.h"
#include "gnnbench/dglx/dataloader.h"
#include "gnnbench/dglx/nn.h"
#include "gnnbench/pygx/dataloader.h"
#include "gnnbench/pygx/nn.h"

namespace gnnbench {
namespace models {

namespace ag = core::ag;
using profiling::Phase;

FullBatchResult
trainFullBatchSage(const graph::Dataset &dataset, Framework framework,
                   RunMode mode, int measured_epochs, uint64_t seed)
{
    GNNBENCH_CHECK(mode == RunMode::CPU || mode == RunMode::GPU,
                   "full-batch training runs on CPU or GPU");
    GNNBENCH_CHECK(measured_epochs > 0, "need at least one epoch");

    device::Session session;
    profiling::PhaseTracker tracker(session);
    core::Rng rng(seed);
    const auto dev = mode == RunMode::GPU ? device::DeviceType::GPU
                                          : device::DeviceType::CPU;

    // Everything below up to the measured loop is setup: loading,
    // model init, (for GPU) one-time movement, one warmup epoch.
    dglx::LoadedData dgl_ld;
    pygx::LoadedData pyg_ld;
    std::unique_ptr<dglx::SageConv> dgl_l1, dgl_l2;
    std::unique_ptr<pygx::SageConv> pyg_l1, pyg_l2;
    std::unique_ptr<core::Adam> opt;
    dglx::KernelCtx dgl_ctx{&session, dev, dglx::Costs{}};
    pygx::KernelCtx pyg_ctx{&session, dev, pygx::Costs{},
                            1.0 / dataset.scale};

    core::Rng wrng = rng.fork();
    std::vector<ag::Var> params;
    if (framework == Framework::Dglx) {
        dgl_ld = dglx::DataLoader::load(dataset);
        dgl_l1 = std::make_unique<dglx::SageConv>(
            dataset.info.numFeatures, 256, wrng);
        dgl_l2 = std::make_unique<dglx::SageConv>(
            256, dataset.info.numClasses, wrng);
        params = dgl_l1->params();
        params.insert(params.end(), dgl_l2->params().begin(),
                      dgl_l2->params().end());
    } else {
        pyg_ld = pygx::DataLoader::load(dataset);
        pyg_l1 = std::make_unique<pygx::SageConv>(
            dataset.info.numFeatures, 256, wrng);
        pyg_l2 = std::make_unique<pygx::SageConv>(
            256, dataset.info.numClasses, wrng);
        params = pyg_l1->params();
        params.insert(params.end(), pyg_l2->params().begin(),
                      pyg_l2->params().end());
        pyg_ld.data->csc();  // conversion happens at setup here
    }
    opt = std::make_unique<core::Adam>(params, 1e-3f);

    const core::Tensor &features = framework == Framework::Dglx
                                       ? dgl_ld.features
                                       : pyg_ld.features;
    const std::vector<int32_t> &labels = framework == Framework::Dglx
                                             ? dgl_ld.labels
                                             : pyg_ld.labels;
    const std::vector<NodeId> &train_idx =
        framework == Framework::Dglx ? dgl_ld.trainIdx
                                     : pyg_ld.trainIdx;

    if (mode == RunMode::GPU)
        session.transfer(features.bytes());

    auto run_epoch = [&]() {
        ag::Var x = ag::leaf(features.clone(), false);
        ag::Var h, out;
        if (framework == Framework::Dglx) {
            h = dgl_l1->forward(*dgl_ld.graph, x, dgl_ctx);
            h = ag::relu(h);
            out = dgl_l2->forward(*dgl_ld.graph, h, dgl_ctx);
        } else {
            h = pyg_l1->forward(*pyg_ld.data, x, pyg_ctx);
            h = ag::relu(h);
            out = pyg_l2->forward(*pyg_ld.data, h, pyg_ctx);
        }
        ag::Var lp = ag::logSoftmax(out);
        ag::Var loss = ag::nllLoss(lp, labels, train_idx);
        opt->zeroGrad();
        ag::backward(loss);
        opt->step();
    };

    run_epoch();  // warmup (also pays any lazy conversion remnants)

    const auto t0 = session.snapshot();
    {
        auto s = tracker.track(Phase::Training);
        for (int e = 0; e < measured_epochs; ++e)
            run_epoch();
    }
    const auto slice =
        profiling::sliceBetween(t0, session.snapshot());

    FullBatchResult result;
    result.config = configName(framework, mode);
    result.secondsPerEpoch = slice.seconds() / measured_epochs;
    const power::PowerModel pm(power::PowerSpec{},
                               mode == RunMode::GPU);
    power::ActivitySlice per_epoch = slice;
    per_epoch.cpuBusySeconds /= measured_epochs;
    per_epoch.gpuBusySeconds /= measured_epochs;
    per_epoch.gpuUtilSeconds /= measured_epochs;
    per_epoch.xferSeconds /= measured_epochs;
    result.energyPerEpoch = pm.energyOf(per_epoch);
    return result;
}

} // namespace models
} // namespace gnnbench
