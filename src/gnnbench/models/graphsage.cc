#include "gnnbench/models/graphsage.h"

#include "gnnbench/core/optim.h"
#include "gnnbench/dglx/dataloader.h"
#include "gnnbench/dglx/gpu_sampler.h"
#include "gnnbench/dglx/nn.h"
#include "gnnbench/models/feature_fetch.h"
#include "gnnbench/pygx/dataloader.h"
#include "gnnbench/pygx/nn.h"
#include "gnnbench/pygx/sampler.h"

namespace gnnbench {
namespace models {

namespace ag = core::ag;
using profiling::Phase;

namespace {

/** Labels of the seed nodes, in batch order. */
std::vector<int32_t>
seedLabels(const std::vector<int32_t> &labels,
           const std::vector<NodeId> &seeds)
{
    std::vector<int32_t> out(seeds.size());
    for (size_t i = 0; i < seeds.size(); ++i)
        out[i] = labels[seeds[i]];
    return out;
}

TrainResult
runDglx(const graph::Dataset &dataset, const TrainConfig &cfg,
        device::Session &session, profiling::PhaseTracker &tracker)
{
    GNNBENCH_CHECK(cfg.fanouts.size() == 2,
                   "GraphSAGE model uses two layers / two fanouts");
    core::Rng rng(cfg.seed);

    dglx::LoadedData ld;
    {
        auto s = tracker.track(Phase::DataLoading);
        ld = dglx::DataLoader::load(dataset);
    }
    const dglx::Graph &g = *ld.graph;

    const auto train_dev = usesGpu(cfg.mode)
                               ? device::DeviceType::GPU
                               : device::DeviceType::CPU;
    dglx::KernelCtx ctx{&session, train_dev, dglx::Costs{}};

    core::Rng wrng = rng.fork();
    dglx::SageConv layer1(dataset.info.numFeatures, cfg.hiddenDim,
                          wrng);
    dglx::SageConv layer2(cfg.hiddenDim, dataset.info.numClasses,
                          wrng);
    std::vector<ag::Var> params = layer1.params();
    params.insert(params.end(), layer2.params().begin(),
                  layer2.params().end());
    core::Adam opt(params, cfg.lr);

    // One-time data movement: initial model, plus graph + features
    // when pre-loading (mandatory for the GPU-resident sampler).
    // The feature matrix is registered with the memory hierarchy so
    // per-batch gathers walk the cache tiers; pre-loading streams its
    // tiles into the VRAM tier up front.
    const bool preloaded =
        cfg.preloadFeatures || cfg.mode == RunMode::GPU;
    device::FeatureRegion feat_region;
    if (usesGpu(cfg.mode)) {
        auto s = tracker.track(Phase::DataMovement);
        feat_region = session.registerRegion(ld.features.rows(),
                                             ld.features.cols() * 4);
        uint64_t bytes = layer1.paramBytes() + layer2.paramBytes();
        if (preloaded) {
            bytes += g.structureBytes();
            session.preloadRegion(feat_region);
        }
        session.transfer(bytes);
        const uint64_t resident =
            bytes + (preloaded ? ld.features.bytes() : 0);
        GNNBENCH_CHECK(session.reserveGpu(resident),
                       "graph + features exceed GPU memory; "
                       "pre-loading infeasible");
    }

    // Sampler construction (cheap for dglx).
    std::unique_ptr<dglx::NeighborSampler> cpu_sampler;
    std::unique_ptr<dglx::GpuNeighborSampler> gpu_sampler;
    {
        auto s = tracker.track(Phase::Sampling);
        core::Rng srng = rng.fork();
        if (cfg.mode == RunMode::GPU ||
            cfg.mode == RunMode::UVAGPU) {
            const auto gmode = cfg.mode == RunMode::GPU
                                   ? dglx::GpuNeighborSampler::
                                         Mode::GpuResident
                                   : dglx::GpuNeighborSampler::
                                         Mode::Uva;
            gpu_sampler = std::make_unique<dglx::GpuNeighborSampler>(
                g, cfg.fanouts, srng, gmode, session);
        } else {
            cpu_sampler = std::make_unique<dglx::NeighborSampler>(
                g, cfg.fanouts, srng);
        }
    }

    TrainResult result;
    double prev_train_seconds = 0.0;
    for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
        EpochStats es;
        auto seed_batches =
            makeBatches(ld.trainIdx, cfg.batchSize, rng);
        // CPU sampling always goes through the loader so batch RNG
        // streams depend only on batch index: num_workers scales
        // prefetch overlap (0 = inline) without changing results.
        std::unique_ptr<dglx::NeighborLoader> loader;
        if (cpu_sampler) {
            auto s = tracker.track(Phase::Sampling);
            loader = std::make_unique<dglx::NeighborLoader>(
                *cpu_sampler, rng, seed_batches, cfg.numWorkers,
                cfg.prefetchDepth);
        }
        for (auto &seeds : seed_batches) {
            sampling::NeighborSample smp;
            {
                auto s = tracker.track(Phase::Sampling);
                if (loader) {
                    auto got = loader->next();
                    GNNBENCH_CHECK(got.has_value(),
                                   "prefetch loader exhausted early");
                    smp = std::move(*got);
                } else {
                    smp = gpu_sampler->sample(seeds);
                }
            }
            // The GPU-resident sampler already produces the blocks in
            // device memory; otherwise the structure must move.
            const uint64_t structure_bytes =
                (cfg.mode == RunMode::GPU ||
                 cfg.mode == RunMode::UVAGPU)
                    ? 0
                    : smp.structureBytes();
            core::Tensor x = fetchFeatures(
                ld.features, smp.inputNodes(), cfg.mode, preloaded,
                cfg.prefetch, prev_train_seconds, session, tracker,
                structure_bytes, &feat_region);

            const auto t0 = session.snapshot();
            {
                auto s = tracker.track(Phase::Training);
                ag::Var xv = ag::leaf(std::move(x), false);
                ag::Var h =
                    layer1.forwardBlock(smp.blocks[0], xv, ctx);
                h = ag::relu(h);
                ag::Var out =
                    layer2.forwardBlock(smp.blocks[1], h, ctx);
                ag::Var lp = ag::logSoftmax(out);
                auto labels = seedLabels(ld.labels, seeds);
                es.correct += core::ops::countCorrect(out->value,
                                                      labels, {});
                es.total +=
                    static_cast<int64_t>(seeds.size());
                ag::Var loss = ag::nllLoss(lp, std::move(labels), {});
                es.loss += loss->value(0, 0) *
                           static_cast<double>(seeds.size());
                opt.zeroGrad();
                ag::backward(loss);
                opt.step();
            }
            prev_train_seconds =
                device::Session::virtualSeconds(t0,
                                                session.snapshot());
        }
        if (loader)
            chargeWorkerSampling(tracker, *loader);
        es.loss /= std::max<int64_t>(es.total, 1);
        result.epochs.push_back(es);
    }

    TrainResult final = finalizeResult(Framework::Dglx, cfg.mode,
                                       tracker, power::PowerSpec{});
    final.epochs = std::move(result.epochs);
    return final;
}

TrainResult
runPygx(const graph::Dataset &dataset, const TrainConfig &cfg,
        device::Session &session, profiling::PhaseTracker &tracker)
{
    GNNBENCH_CHECK(cfg.mode == RunMode::CPU ||
                       cfg.mode == RunMode::CPUGPU,
                   "PyG has no GPU/UVA sampler (paper Section 4.3)");
    core::Rng rng(cfg.seed);

    pygx::LoadedData ld;
    {
        auto s = tracker.track(Phase::DataLoading);
        ld = pygx::DataLoader::load(dataset);
    }

    const auto train_dev = usesGpu(cfg.mode)
                               ? device::DeviceType::GPU
                               : device::DeviceType::CPU;
    pygx::KernelCtx ctx{&session, train_dev, pygx::Costs{},
                        1.0 / dataset.scale};

    core::Rng wrng = rng.fork();
    pygx::SageConv layer1(dataset.info.numFeatures, cfg.hiddenDim,
                          wrng);
    pygx::SageConv layer2(cfg.hiddenDim, dataset.info.numClasses,
                          wrng);
    std::vector<ag::Var> params = layer1.params();
    params.insert(params.end(), layer2.params().begin(),
                  layer2.params().end());
    core::Adam opt(params, cfg.lr);

    const bool preloaded = cfg.preloadFeatures;
    device::FeatureRegion feat_region;
    if (usesGpu(cfg.mode)) {
        auto s = tracker.track(Phase::DataMovement);
        feat_region = session.registerRegion(ld.features.rows(),
                                             ld.features.cols() * 4);
        uint64_t bytes = layer1.paramBytes() + layer2.paramBytes();
        if (preloaded) {
            bytes += ld.data->structureBytes();
            session.preloadRegion(feat_region);
        }
        session.transfer(bytes);
        const uint64_t resident =
            bytes + (preloaded ? ld.features.bytes() : 0);
        GNNBENCH_CHECK(session.reserveGpu(resident),
                       "graph + features exceed GPU memory; "
                       "pre-loading infeasible");
    }

    std::unique_ptr<pygx::NeighborSampler> sampler;
    {
        // Includes the CSR->CSC conversion PyG's loader performs.
        auto s = tracker.track(Phase::Sampling);
        sampler = std::make_unique<pygx::NeighborSampler>(
            *ld.data, cfg.fanouts, rng.fork(), &session);
    }

    TrainResult result;
    double prev_train_seconds = 0.0;
    for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
        EpochStats es;
        auto seed_batches =
            makeBatches(ld.trainIdx, cfg.batchSize, rng);
        // All sampling goes through the loader so batch RNG streams
        // depend only on batch index: num_workers scales prefetch
        // overlap (0 = inline) without changing results; next()
        // charges the workers' modeled interpreter time here.
        std::unique_ptr<pygx::NeighborLoader> loader;
        {
            auto s = tracker.track(Phase::Sampling);
            loader = std::make_unique<pygx::NeighborLoader>(
                *sampler, rng, seed_batches, cfg.numWorkers,
                cfg.prefetchDepth, &session);
        }
        for (auto &seeds : seed_batches) {
            pygx::NeighborBatch batch;
            {
                auto s = tracker.track(Phase::Sampling);
                auto got = loader->next();
                GNNBENCH_CHECK(got.has_value(),
                               "prefetch loader exhausted early");
                batch = std::move(*got);
            }
            core::Tensor x = fetchFeatures(
                ld.features, batch.inputNodes(), cfg.mode, preloaded,
                cfg.prefetch, prev_train_seconds, session, tracker,
                batch.structureBytes(), &feat_region);

            const auto t0 = session.snapshot();
            {
                auto s = tracker.track(Phase::Training);
                ag::Var xv = ag::leaf(std::move(x), false);
                ag::Var h =
                    layer1.forwardLayer(batch.layers[0], xv, ctx);
                h = ag::relu(h);
                ag::Var out =
                    layer2.forwardLayer(batch.layers[1], h, ctx);
                ag::Var lp = ag::logSoftmax(out);
                auto labels = seedLabels(ld.labels, seeds);
                es.correct += core::ops::countCorrect(out->value,
                                                      labels, {});
                es.total += static_cast<int64_t>(seeds.size());
                ag::Var loss = ag::nllLoss(lp, std::move(labels), {});
                es.loss += loss->value(0, 0) *
                           static_cast<double>(seeds.size());
                opt.zeroGrad();
                ag::backward(loss);
                opt.step();
            }
            prev_train_seconds =
                device::Session::virtualSeconds(t0,
                                                session.snapshot());
        }
        chargeWorkerSampling(tracker, *loader);
        es.loss /= std::max<int64_t>(es.total, 1);
        result.epochs.push_back(es);
    }

    TrainResult final = finalizeResult(Framework::Pygx, cfg.mode,
                                       tracker, power::PowerSpec{});
    final.epochs = std::move(result.epochs);
    return final;
}

} // namespace

TrainResult
trainGraphSage(const graph::Dataset &dataset, const TrainConfig &cfg)
{
    device::Session session;
    profiling::PhaseTracker tracker(session);
    if (cfg.framework == Framework::Dglx)
        return runDglx(dataset, cfg, session, tracker);
    return runPygx(dataset, cfg, session, tracker);
}

} // namespace models
} // namespace gnnbench
