/**
 * @file
 * Shared configuration and result types of the end-to-end GNN
 * training pipelines (GraphSAGE, ClusterGCN, GraphSAINT, full-batch).
 *
 * A pipeline run follows the paper's Figure 2 workflow — data
 * loading, then per-batch sampling / data movement / model training —
 * with every phase accounted through profiling::PhaseTracker and the
 * device model, and energy integrated by the power model.
 */

#ifndef GNNBENCH_MODELS_PIPELINE_H
#define GNNBENCH_MODELS_PIPELINE_H

#include <array>
#include <string>
#include <vector>

#include "gnnbench/core/rng.h"
#include "gnnbench/graph/datasets.h"
#include "gnnbench/power/energy_meter.h"
#include "gnnbench/profiling/profiler.h"

namespace gnnbench {
namespace models {

/** Which framework implementation executes the run. */
enum class Framework { Dglx, Pygx };

/**
 * Device placement, matching the paper's configuration labels:
 *  - CPU:    sampling and training on CPU ("DGL-CPU"/"PyG-CPU")
 *  - CPUGPU: sampling on CPU, training on GPU ("-CPUGPU")
 *  - GPU:    GPU-resident graph + GPU sampler ("DGL-GPU"; dglx only)
 *  - UVAGPU: UVA sampler over pinned host memory ("DGL-UVAGPU")
 */
enum class RunMode { CPU, CPUGPU, GPU, UVAGPU };

const char *frameworkName(Framework fw);
const char *runModeName(RunMode mode);

/** Combined label like "DGL-CPUGPU" used in reports. */
std::string configName(Framework fw, RunMode mode);

/** Hyperparameters of a training run (paper defaults). */
struct TrainConfig
{
    Framework framework = Framework::Dglx;
    RunMode mode = RunMode::CPU;
    int epochs = 10;
    int64_t hiddenDim = 256;
    float lr = 1e-3f;
    uint64_t seed = 1;

    /// GraphSAGE sampler: fanouts {25, 10}, batch size 512.
    std::vector<int> fanouts = {25, 10};
    int batchSize = 512;

    /// ClusterGCN sampler: 2000 partitions, 50 clusters per batch.
    int32_t numParts = 2000;
    int32_t clustersPerBatch = 50;

    /// GraphSAINT sampler: 3000 roots, walk length 2.
    int32_t saintRoots = 3000;
    int32_t saintWalkLength = 2;

    /// Case study (Figures 18-19): pre-load graph + features to GPU.
    bool preloadFeatures = false;

    /// Extension: asynchronous pre-fetch overlapping movement with
    /// training (DGL feature the paper mentions but does not plot).
    bool prefetch = false;

    /// Sampler workers of the prefetching dataloader, mirroring
    /// DGL/PyG num_workers: 0 samples synchronously on the main
    /// thread (the paper's configuration); N > 0 runs N sampling
    /// threads ahead of training on the CPU-sampling paths.
    int numWorkers = 0;

    /// Batches buffered per worker before its producer blocks.
    int prefetchDepth = 2;
};

/** Per-epoch training statistics. */
struct EpochStats
{
    double loss = 0.0;
    int64_t correct = 0;
    int64_t total = 0;

    double
    accuracy() const
    {
        return total > 0 ? static_cast<double>(correct) / total : 0.0;
    }
};

/** Everything a benchmark needs from one training run. */
struct TrainResult
{
    std::string config;                ///< e.g. "DGL-CPUGPU"
    std::array<power::ActivitySlice, profiling::kNumPhases> phases;
    /** Detached prefetch-worker busy time per phase (concurrent with
     *  the main timeline, so not part of totalSeconds()). */
    std::array<power::ActivitySlice, profiling::kNumPhases>
        workerPhases;
    power::EnergyReport energy;
    std::vector<EpochStats> epochs;
    bool oom = false;                  ///< pygx materialization OOM

    double
    phaseSeconds(profiling::Phase p) const
    {
        return phases[static_cast<int>(p)].seconds();
    }

    /** Total virtual runtime across all phases. */
    double totalSeconds() const;

    /** Average power over the run. */
    double avgWatts() const
    {
        return energy.avgWatts();
    }
};

/**
 * Copy phase totals out of a tracker and integrate energy with the
 * given power spec (GPU power accounted iff the mode uses the GPU).
 */
TrainResult finalizeResult(Framework fw, RunMode mode,
                           const profiling::PhaseTracker &tracker,
                           const power::PowerSpec &power_spec);

/** Shuffle ids and split into batches of at most @p batch_size. */
std::vector<std::vector<NodeId>> makeBatches(
    const std::vector<NodeId> &ids, int batch_size, core::Rng &rng);

/** GraphSAINT batches per epoch: one pass over all nodes given the
 *  expected subgraph size roots * (walk_length + 1). */
int saintBatchesPerEpoch(NodeId num_nodes, int32_t roots,
                         int32_t walk_length);

/** True when the mode runs any work on the GPU. */
bool usesGpu(RunMode mode);

/**
 * Attribute a multi-worker loader's sampling busy time to the
 * tracker's detached worker tally (Phase::Sampling).  Joins the
 * workers; call once per loader, before discarding it.  The main
 * timeline is untouched — it already contains the consumer-side wait
 * for these same batches.
 */
template <typename Loader>
void
chargeWorkerSampling(profiling::PhaseTracker &tracker, Loader &loader)
{
    double busy = 0.0;
    for (double s : loader.workerBusySeconds())
        busy += s;
    if (busy <= 0.0)
        return;
    power::ActivitySlice slice;
    slice.cpuBusySeconds = busy;
    tracker.addWorker(profiling::Phase::Sampling, slice);
}

} // namespace models
} // namespace gnnbench

#endif // GNNBENCH_MODELS_PIPELINE_H
