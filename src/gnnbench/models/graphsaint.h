/**
 * @file
 * End-to-end GraphSAINT training (Zeng et al. 2020) with the
 * random-walk sampler (3000 roots, walk length 2), two GCN layers —
 * the configuration of the paper's Figures 14-17.
 */

#ifndef GNNBENCH_MODELS_GRAPHSAINT_H
#define GNNBENCH_MODELS_GRAPHSAINT_H

#include "gnnbench/models/pipeline.h"

namespace gnnbench {
namespace models {

/** Train GraphSAINT; CPU and CPUGPU modes only (as benchmarked). */
TrainResult trainGraphSaint(const graph::Dataset &dataset,
                            const TrainConfig &config);

} // namespace models
} // namespace gnnbench

#endif // GNNBENCH_MODELS_GRAPHSAINT_H
