/**
 * @file
 * Conversions between graph storage formats.
 *
 * Format conversion is itself one of the measured costs in the paper
 * (PyG's samplers require a CSR-to-CSC conversion that "turns out to
 * be quite slow on large datasets"), so the conversions are exposed as
 * first-class operations rather than hidden constructors.
 */

#ifndef GNNBENCH_GRAPH_CONVERT_H
#define GNNBENCH_GRAPH_CONVERT_H

#include "gnnbench/graph/coo.h"
#include "gnnbench/graph/csr.h"

namespace gnnbench {
namespace graph {

/** Build the out-adjacency CSR of a COO edge list. */
CsrGraph cooToCsr(const CooGraph &g);

/** Build the in-adjacency (CSC, stored row-wise by destination). */
CsrGraph cooToCsc(const CooGraph &g);

/** Transpose a CSR (CSR of the reverse graph == CSC of the graph). */
CsrGraph csrTranspose(const CsrGraph &g);

/** Expand a CSR back into a COO edge list (row-major edge order). */
CooGraph csrToCoo(const CsrGraph &g);

/**
 * Extract the subgraph induced by @p nodes (original ids) with nodes
 * relabeled to 0..k-1 in the order given.  Reference implementation
 * shared by tests; the frameworks implement their own versions with
 * deliberately different performance characteristics.
 */
CsrGraph inducedSubgraph(const CsrGraph &g,
                         const std::vector<NodeId> &nodes);

} // namespace graph
} // namespace gnnbench

#endif // GNNBENCH_GRAPH_CONVERT_H
