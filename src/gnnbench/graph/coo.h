/**
 * @file
 * Coordinate-format (COO) graph: parallel src/dst edge arrays.
 *
 * COO is the interchange format of the library: generators emit COO,
 * pygx keeps its graphs in COO ("edge_index") like PyG, and dglx
 * converts COO into CSR/CSC on construction like DGL.
 */

#ifndef GNNBENCH_GRAPH_COO_H
#define GNNBENCH_GRAPH_COO_H

#include <vector>

#include "gnnbench/core/common.h"

namespace gnnbench {
namespace graph {

/** An edge list with a node count; edges are directed src -> dst. */
struct CooGraph
{
    NodeId numNodes = 0;
    std::vector<NodeId> src;
    std::vector<NodeId> dst;

    EdgeId numEdges() const { return static_cast<EdgeId>(src.size()); }

    /** Append one directed edge. */
    void
    addEdge(NodeId u, NodeId v)
    {
        src.push_back(u);
        dst.push_back(v);
    }

    /** Validate node ids and array lengths; fatal on violation. */
    void validate() const;
};

/**
 * Return a copy with both edge directions present and duplicate edges
 * removed (self-loops are kept only if @p keep_self_loops).
 */
CooGraph symmetrize(const CooGraph &g, bool keep_self_loops = true);

/** Remove duplicate edges (stable on first occurrence ordering lost). */
CooGraph dedup(const CooGraph &g);

} // namespace graph
} // namespace gnnbench

#endif // GNNBENCH_GRAPH_COO_H
