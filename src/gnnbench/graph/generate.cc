#include "gnnbench/graph/generate.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "gnnbench/graph/convert.h"

namespace gnnbench {
namespace graph {

CooGraph
rmat(NodeId num_nodes, EdgeId num_edges, core::Rng &rng,
     const RmatParams &params)
{
    GNNBENCH_CHECK(num_nodes > 0 && num_edges >= 0, "rmat: bad sizes");
    GNNBENCH_CHECK(params.a + params.b + params.c <= 1.0,
                   "rmat: quadrant probabilities exceed 1");
    const int levels =
        std::max(1, static_cast<int>(std::ceil(std::log2(
                        std::max<NodeId>(num_nodes, 2)))));
    CooGraph g;
    g.numNodes = num_nodes;
    g.src.reserve(num_edges);
    g.dst.reserve(num_edges);
    // Draw edges; re-draw when an endpoint lands outside [0, n) (the
    // 2^levels grid can be larger than n).
    for (EdgeId e = 0; e < num_edges; ++e) {
        NodeId u = 0, v = 0;
        NodeId step = NodeId{1} << (levels - 1);
        for (int l = 0; l < levels; ++l) {
            // Perturb quadrant probabilities per level so the
            // distribution is not perfectly self-similar.
            const double jit =
                1.0 + params.noise * (2.0 * rng.uniform() - 1.0);
            const double aa = params.a * jit;
            const double bb = params.b * jit;
            const double cc = params.c * jit;
            const double total = aa + bb + cc +
                                 (1.0 - params.a - params.b - params.c);
            const double r = rng.uniform() * total;
            if (r < aa) {
                // top-left: no move
            } else if (r < aa + bb) {
                v += step;
            } else if (r < aa + bb + cc) {
                u += step;
            } else {
                u += step;
                v += step;
            }
            step >>= 1;
        }
        if (u >= num_nodes || v >= num_nodes) {
            --e;
            continue;
        }
        g.addEdge(u, v);
    }
    // Random relabeling so node id carries no quadrant information.
    auto perm = rng.permutation(num_nodes);
    for (auto &u : g.src)
        u = perm[u];
    for (auto &v : g.dst)
        v = perm[v];
    return g;
}

CooGraph
erdosRenyi(NodeId num_nodes, EdgeId num_edges, core::Rng &rng)
{
    GNNBENCH_CHECK(num_nodes > 0, "erdosRenyi: empty graph");
    CooGraph g;
    g.numNodes = num_nodes;
    g.src.reserve(num_edges);
    g.dst.reserve(num_edges);
    for (EdgeId e = 0; e < num_edges; ++e) {
        g.addEdge(static_cast<NodeId>(rng.uniformInt(num_nodes)),
                  static_cast<NodeId>(rng.uniformInt(num_nodes)));
    }
    return g;
}

std::vector<int32_t>
communityLabels(const CooGraph &g, int32_t num_classes, core::Rng &rng,
                double noise)
{
    GNNBENCH_CHECK(num_classes > 0, "communityLabels: no classes");
    const CsrGraph csr = cooToCsr(symmetrize(g, false));
    std::vector<int32_t> labels(g.numNodes, -1);
    // Seed one BFS frontier per class from random distinct nodes and
    // grow them round-robin; unreachable leftovers get random labels.
    std::vector<std::queue<NodeId>> frontiers(num_classes);
    const NodeId seeds = std::min<NodeId>(num_classes, g.numNodes);
    auto seed_nodes = rng.sampleWithoutReplacement(g.numNodes, seeds);
    for (NodeId i = 0; i < seeds; ++i) {
        labels[seed_nodes[i]] = i;
        frontiers[i].push(seed_nodes[i]);
    }
    bool progress = true;
    while (progress) {
        progress = false;
        for (int32_t cls = 0; cls < num_classes; ++cls) {
            auto &frontier = frontiers[cls];
            // Pop until one node expands, to keep classes balanced.
            while (!frontier.empty()) {
                const NodeId u = frontier.front();
                frontier.pop();
                bool expanded = false;
                for (auto it = csr.rowBegin(u); it != csr.rowEnd(u);
                     ++it) {
                    if (labels[*it] == -1) {
                        labels[*it] = cls;
                        frontier.push(*it);
                        expanded = true;
                    }
                }
                if (expanded) {
                    progress = true;
                    break;
                }
            }
        }
    }
    for (NodeId v = 0; v < g.numNodes; ++v) {
        if (labels[v] == -1 || rng.bernoulli(noise))
            labels[v] = static_cast<int32_t>(rng.uniformInt(num_classes));
    }
    return labels;
}

} // namespace graph
} // namespace gnnbench
