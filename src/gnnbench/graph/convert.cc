#include "gnnbench/graph/convert.h"

#include <algorithm>
#include <unordered_map>

#include "gnnbench/check/validate.h"

namespace gnnbench {
namespace graph {

namespace {

/** Counting-sort based COO -> CSR keyed by the given edge endpoint. */
CsrGraph
buildAdjacency(NodeId num_nodes, const std::vector<NodeId> &key,
               const std::vector<NodeId> &other)
{
    CsrGraph out;
    out.numRows = num_nodes;
    out.numCols = num_nodes;
    out.indptr.assign(num_nodes + 1, 0);
    for (NodeId k : key)
        ++out.indptr[k + 1];
    for (NodeId r = 0; r < num_nodes; ++r)
        out.indptr[r + 1] += out.indptr[r];
    out.indices.resize(key.size());
    std::vector<EdgeId> cursor(out.indptr.begin(), out.indptr.end() - 1);
    for (size_t e = 0; e < key.size(); ++e)
        out.indices[cursor[key[e]]++] = other[e];
    return out;
}

} // namespace

CsrGraph
cooToCsr(const CooGraph &g)
{
    if (check::enabled())
        check::require(check::checkCoo(g));
    CsrGraph out = buildAdjacency(g.numNodes, g.src, g.dst);
    if (check::enabled())
        check::require(check::checkCsr(out));
    return out;
}

CsrGraph
cooToCsc(const CooGraph &g)
{
    if (check::enabled())
        check::require(check::checkCoo(g));
    CsrGraph out = buildAdjacency(g.numNodes, g.dst, g.src);
    if (check::enabled())
        check::require(check::checkCsr(out));
    return out;
}

CsrGraph
csrTranspose(const CsrGraph &g)
{
    if (check::enabled())
        check::require(check::checkCsr(g));
    CsrGraph out;
    out.numRows = g.numCols;
    out.numCols = g.numRows;
    out.indptr.assign(g.numCols + 1, 0);
    for (NodeId c : g.indices)
        ++out.indptr[c + 1];
    for (NodeId r = 0; r < out.numRows; ++r)
        out.indptr[r + 1] += out.indptr[r];
    out.indices.resize(g.indices.size());
    std::vector<EdgeId> cursor(out.indptr.begin(), out.indptr.end() - 1);
    for (NodeId r = 0; r < g.numRows; ++r)
        for (EdgeId e = g.indptr[r]; e < g.indptr[r + 1]; ++e)
            out.indices[cursor[g.indices[e]]++] = r;
    if (check::enabled())
        check::require(check::checkCsr(out));
    return out;
}

CooGraph
csrToCoo(const CsrGraph &g)
{
    GNNBENCH_CHECK(g.numRows == g.numCols,
                   "csrToCoo expects a square adjacency");
    if (check::enabled())
        check::require(check::checkCsr(g));
    CooGraph out;
    out.numNodes = g.numRows;
    out.src.reserve(g.indices.size());
    out.dst.reserve(g.indices.size());
    for (NodeId r = 0; r < g.numRows; ++r)
        for (EdgeId e = g.indptr[r]; e < g.indptr[r + 1]; ++e) {
            out.src.push_back(r);
            out.dst.push_back(g.indices[e]);
        }
    return out;
}

CsrGraph
inducedSubgraph(const CsrGraph &g, const std::vector<NodeId> &nodes)
{
    GNNBENCH_CHECK(g.numRows == g.numCols,
                   "inducedSubgraph expects a square adjacency");
    if (check::enabled())
        check::require(check::checkCsr(g));
    const NodeId k = static_cast<NodeId>(nodes.size());
    // Dense membership map: -1 = absent, else local id.
    std::vector<NodeId> local(g.numRows, -1);
    for (NodeId i = 0; i < k; ++i) {
        GNNBENCH_CHECK(local[nodes[i]] == -1,
                       "inducedSubgraph: duplicate node in set");
        local[nodes[i]] = i;
    }
    CsrGraph out;
    out.numRows = k;
    out.numCols = k;
    out.indptr.assign(k + 1, 0);
    for (NodeId i = 0; i < k; ++i) {
        const NodeId u = nodes[i];
        for (EdgeId e = g.indptr[u]; e < g.indptr[u + 1]; ++e)
            if (local[g.indices[e]] != -1)
                ++out.indptr[i + 1];
    }
    for (NodeId i = 0; i < k; ++i)
        out.indptr[i + 1] += out.indptr[i];
    out.indices.resize(out.indptr.back());
    std::vector<EdgeId> cursor(out.indptr.begin(), out.indptr.end() - 1);
    for (NodeId i = 0; i < k; ++i) {
        const NodeId u = nodes[i];
        for (EdgeId e = g.indptr[u]; e < g.indptr[u + 1]; ++e) {
            const NodeId lv = local[g.indices[e]];
            if (lv != -1)
                out.indices[cursor[i]++] = lv;
        }
    }
    if (check::enabled())
        check::require(check::checkCsr(out, {.requireSquare = true}));
    return out;
}

} // namespace graph
} // namespace gnnbench
