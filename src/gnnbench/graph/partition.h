/**
 * @file
 * Multilevel k-way graph partitioner.
 *
 * ClusterGCN partitions the input graph with METIS; offline we provide
 * a partitioner from the same algorithmic family: heavy-edge-matching
 * coarsening, greedy BFS initial partitioning on the coarsest graph,
 * and greedy boundary refinement during uncoarsening.  It produces
 * balanced, low-cut clusters so the ClusterGCN sampler sees realistic
 * intra-cluster locality, and its (one-time) cost shows up in the
 * sampler benchmark exactly as METIS does in the paper.
 */

#ifndef GNNBENCH_GRAPH_PARTITION_H
#define GNNBENCH_GRAPH_PARTITION_H

#include <vector>

#include "gnnbench/core/rng.h"
#include "gnnbench/graph/csr.h"

namespace gnnbench {
namespace graph {

/** Output of partitionGraph: a node -> part assignment plus metrics. */
struct PartitionResult
{
    std::vector<int32_t> assignment;  ///< size numNodes, values in [0,k)
    int32_t numParts = 0;
    EdgeId cutEdges = 0;      ///< directed edges crossing parts
    NodeId maxPartSize = 0;   ///< largest part, for balance checks
};

/** Tuning knobs of the multilevel partitioner. */
struct PartitionOptions
{
    /** Stop coarsening once the graph has at most this many times k
     *  nodes. */
    int coarsenToFactor = 4;
    /** Refinement passes per uncoarsening level. */
    int refineIters = 2;
    /** Allowed imbalance: max part weight <= balance * (n / k). */
    double balance = 1.25;
};

/**
 * Partition the (square, ideally symmetric) adjacency @p g into @p k
 * parts.  Deterministic in @p rng's state.
 */
PartitionResult partitionGraph(const CsrGraph &g, int32_t k,
                               core::Rng &rng,
                               const PartitionOptions &opts = {});

/** Count directed edges whose endpoints live in different parts.
 *  Self-loops never cross a part boundary and are excluded. */
EdgeId countCutEdges(const CsrGraph &g,
                     const std::vector<int32_t> &assignment);

} // namespace graph
} // namespace gnnbench

#endif // GNNBENCH_GRAPH_PARTITION_H
