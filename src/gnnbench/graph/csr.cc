#include "gnnbench/graph/csr.h"

namespace gnnbench {
namespace graph {

void
CsrGraph::validate() const
{
    GNNBENCH_CHECK(static_cast<NodeId>(indptr.size()) == numRows + 1,
                   "CSR indptr size");
    GNNBENCH_CHECK(indptr.front() == 0, "CSR indptr[0] != 0");
    GNNBENCH_CHECK(indptr.back() == numEdges(),
                   "CSR indptr tail != numEdges");
    for (NodeId r = 0; r < numRows; ++r)
        GNNBENCH_CHECK(indptr[r] <= indptr[r + 1],
                       "CSR indptr not monotone at row ", r);
    for (NodeId c : indices)
        GNNBENCH_CHECK(c >= 0 && c < numCols, "CSR column out of range");
}

std::vector<EdgeId>
outDegrees(const CsrGraph &g)
{
    std::vector<EdgeId> deg(g.numRows);
    for (NodeId r = 0; r < g.numRows; ++r)
        deg[r] = g.degree(r);
    return deg;
}

std::vector<EdgeId>
inDegrees(const CsrGraph &g)
{
    std::vector<EdgeId> deg(g.numCols, 0);
    for (NodeId c : g.indices)
        ++deg[c];
    return deg;
}

} // namespace graph
} // namespace gnnbench
