/**
 * @file
 * Compressed sparse row (CSR) adjacency, also used (transposed) as
 * compressed sparse column (CSC).
 *
 * The structure supports *bipartite* adjacencies (numRows != numCols)
 * because sampled message-flow blocks map a set of source nodes onto a
 * smaller set of destination nodes.
 */

#ifndef GNNBENCH_GRAPH_CSR_H
#define GNNBENCH_GRAPH_CSR_H

#include <vector>

#include "gnnbench/core/common.h"

namespace gnnbench {
namespace graph {

/**
 * CSR adjacency: row r's neighbors are indices[indptr[r]..indptr[r+1]).
 *
 * For a full graph numRows == numCols == |V|.  When used as a CSC the
 * "rows" are destination nodes and "neighbors" are in-neighbors; the
 * semantics are documented at each use site.
 */
struct CsrGraph
{
    NodeId numRows = 0;
    NodeId numCols = 0;
    std::vector<EdgeId> indptr;   // size numRows + 1
    std::vector<NodeId> indices;  // size numEdges

    EdgeId numEdges() const { return static_cast<EdgeId>(indices.size()); }

    /** Out-degree of row r. */
    EdgeId
    degree(NodeId r) const
    {
        return indptr[r + 1] - indptr[r];
    }

    /** Begin pointer of row r's neighbor list. */
    const NodeId *
    rowBegin(NodeId r) const
    {
        return indices.data() + indptr[r];
    }

    /** End pointer of row r's neighbor list. */
    const NodeId *
    rowEnd(NodeId r) const
    {
        return indices.data() + indptr[r + 1];
    }

    /** Validate structural invariants; fatal on violation. */
    void validate() const;
};

/** Per-row degrees of a CSR. */
std::vector<EdgeId> outDegrees(const CsrGraph &g);

/** Per-column degrees of a CSR (in-degrees of the graph it encodes). */
std::vector<EdgeId> inDegrees(const CsrGraph &g);

} // namespace graph
} // namespace gnnbench

#endif // GNNBENCH_GRAPH_CSR_H
