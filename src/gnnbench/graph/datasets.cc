#include "gnnbench/graph/datasets.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "gnnbench/graph/generate.h"

namespace gnnbench {
namespace graph {

const std::vector<DatasetInfo> &
datasetTable()
{
    // Statistics straight from Table 1 of the paper.  Default scales
    // are sized so the full benchmark suite completes on a single CPU
    // core; they preserve mean degree (nodes and edges shrink
    // together).
    static const std::vector<DatasetInfo> table = {
        {"ppi", "Protein-Protein Interactions", 14755, 225270, 50, 121,
         0.66, 0.12, 0.22, 1.0},
        {"flickr", "Images Sharing Common Properties", 89250, 899756,
         500, 7, 0.50, 0.25, 0.25, 1.0},
        {"ogbn-arxiv", "Citation Network of arXiv CS papers", 169343,
         1166243, 128, 40, 0.54, 0.29, 0.17, 1.0},
        {"reddit", "Online Communities", 232965, 114615892, 602, 41,
         0.66, 0.10, 0.24, 1.0 / 64.0},
        {"yelp", "Businesses and Reviews", 716847, 13954819, 300, 100,
         0.75, 0.10, 0.15, 1.0 / 16.0},
        {"ogbn-products", "Amazon Product Co-purchasing Network",
         2449029, 61859140, 100, 47, 0.08, 0.02, 0.90, 1.0 / 32.0},
    };
    return table;
}

namespace {

std::string
toLower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return s;
}

} // namespace

const DatasetInfo &
datasetInfo(const std::string &name)
{
    const std::string key = toLower(name);
    for (const auto &info : datasetTable())
        if (info.name == key)
            return info;
    GNNBENCH_CHECK(false, "unknown dataset '", name, "'");
    __builtin_unreachable();
}

std::vector<std::string>
datasetNames()
{
    std::vector<std::string> names;
    for (const auto &info : datasetTable())
        names.push_back(info.name);
    return names;
}

Dataset
loadDataset(const std::string &name, double scale_mult, uint64_t seed)
{
    const DatasetInfo &info = datasetInfo(name);
    const double scale = info.defaultScale * scale_mult;
    GNNBENCH_CHECK(scale > 0.0, "dataset scale must be positive");

    Dataset ds;
    ds.info = info;
    ds.scale = scale;

    const NodeId n = std::max<NodeId>(
        16, static_cast<NodeId>(std::llround(info.numNodes * scale)));
    // Table 1 counts undirected edges once; we generate half as many
    // directed edges and symmetrize, so the stored (directed) edge
    // count lands near info.numEdges * scale.
    const EdgeId m_target = std::max<EdgeId>(
        n, static_cast<EdgeId>(std::llround(info.numEdges * scale)));

    core::Rng rng(seed ^ std::hash<std::string>{}(info.name));

    // Dense, skewed graphs lose many duplicate draws to dedup when
    // symmetrized; top up iteratively until the stored edge count is
    // within tolerance of the scaled target (or the graph saturates).
    CooGraph raw = rmat(n, m_target / 2 + m_target / 20, rng);
    ds.graph = symmetrize(raw, false);
    for (int round = 0;
         round < 8 && ds.graph.numEdges() < m_target * 9 / 10;
         ++round) {
        const EdgeId missing = m_target - ds.graph.numEdges();
        CooGraph extra = rmat(n, missing * 2 / 3 + missing / 6, rng);
        ds.graph.src.insert(ds.graph.src.end(), extra.src.begin(),
                            extra.src.end());
        ds.graph.dst.insert(ds.graph.dst.end(), extra.dst.begin(),
                            extra.dst.end());
        ds.graph = symmetrize(ds.graph, false);
    }
    ds.graph.validate();

    ds.labels = communityLabels(ds.graph, info.numClasses, rng);

    // Class-correlated features: centroid per class plus i.i.d. noise,
    // which gives GNN training a learnable signal like real datasets.
    core::Tensor centroids = core::Tensor::randn(
        info.numClasses, info.numFeatures, rng, 1.0f);
    ds.features = core::Tensor::randn(n, info.numFeatures, rng, 0.7f);
    for (NodeId v = 0; v < n; ++v) {
        const float *c = centroids.row(ds.labels[v]);
        float *f = ds.features.row(v);
        for (int64_t j = 0; j < info.numFeatures; ++j)
            f[j] += 0.5f * c[j];
    }

    // Fixed split by seeded permutation, mirroring the datasets'
    // published fixed partitions.
    auto perm = rng.permutation(n);
    const NodeId n_train =
        static_cast<NodeId>(std::llround(n * info.trainFrac));
    const NodeId n_val =
        static_cast<NodeId>(std::llround(n * info.valFrac));
    ds.trainIdx.assign(perm.begin(), perm.begin() + n_train);
    ds.valIdx.assign(perm.begin() + n_train,
                     perm.begin() + n_train + n_val);
    ds.testIdx.assign(perm.begin() + n_train + n_val, perm.end());
    return ds;
}

} // namespace graph
} // namespace gnnbench
