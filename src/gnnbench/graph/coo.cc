#include "gnnbench/graph/coo.h"

#include <algorithm>

namespace gnnbench {
namespace graph {

void
CooGraph::validate() const
{
    GNNBENCH_CHECK(src.size() == dst.size(),
                   "COO src/dst length mismatch");
    for (size_t i = 0; i < src.size(); ++i) {
        GNNBENCH_CHECK(src[i] >= 0 && src[i] < numNodes &&
                           dst[i] >= 0 && dst[i] < numNodes,
                       "COO edge ", i, " out of range");
    }
}

namespace {

/** Sort + unique over packed (src, dst) pairs. */
std::vector<uint64_t>
packedSortedUnique(const CooGraph &g)
{
    std::vector<uint64_t> packed;
    packed.reserve(g.src.size());
    for (size_t i = 0; i < g.src.size(); ++i) {
        packed.push_back((static_cast<uint64_t>(g.src[i]) << 32) |
                         static_cast<uint32_t>(g.dst[i]));
    }
    std::sort(packed.begin(), packed.end());
    packed.erase(std::unique(packed.begin(), packed.end()), packed.end());
    return packed;
}

CooGraph
unpack(NodeId num_nodes, const std::vector<uint64_t> &packed)
{
    CooGraph out;
    out.numNodes = num_nodes;
    out.src.reserve(packed.size());
    out.dst.reserve(packed.size());
    for (uint64_t p : packed) {
        out.src.push_back(static_cast<NodeId>(p >> 32));
        out.dst.push_back(static_cast<NodeId>(p & 0xffffffffu));
    }
    return out;
}

} // namespace

CooGraph
symmetrize(const CooGraph &g, bool keep_self_loops)
{
    CooGraph both;
    both.numNodes = g.numNodes;
    both.src.reserve(g.src.size() * 2);
    both.dst.reserve(g.src.size() * 2);
    for (size_t i = 0; i < g.src.size(); ++i) {
        const NodeId u = g.src[i], v = g.dst[i];
        if (u == v) {
            if (keep_self_loops)
                both.addEdge(u, v);
            continue;
        }
        both.addEdge(u, v);
        both.addEdge(v, u);
    }
    return unpack(g.numNodes, packedSortedUnique(both));
}

CooGraph
dedup(const CooGraph &g)
{
    return unpack(g.numNodes, packedSortedUnique(g));
}

} // namespace graph
} // namespace gnnbench
