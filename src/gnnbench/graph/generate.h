/**
 * @file
 * Synthetic graph generators.
 *
 * The paper's six benchmark datasets are real graphs; offline we
 * substitute statistics-matched synthetic graphs (see DESIGN.md §1).
 * The R-MAT generator produces the skewed, community-structured degree
 * distributions characteristic of social / co-purchase / citation
 * networks, which is what the samplers and kernels are sensitive to.
 */

#ifndef GNNBENCH_GRAPH_GENERATE_H
#define GNNBENCH_GRAPH_GENERATE_H

#include "gnnbench/core/rng.h"
#include "gnnbench/graph/coo.h"

namespace gnnbench {
namespace graph {

/** Parameters of the R-MAT recursive edge generator. */
struct RmatParams
{
    double a = 0.57;  ///< top-left quadrant probability
    double b = 0.19;  ///< top-right
    double c = 0.19;  ///< bottom-left (d = 1 - a - b - c)
    double noise = 0.1;  ///< per-level probability perturbation
};

/**
 * Generate an R-MAT graph with @p num_nodes nodes and (approximately,
 * after dedup re-draws) @p num_edges directed edges.  Node ids are
 * randomly permuted so that id order carries no structure.
 */
CooGraph rmat(NodeId num_nodes, EdgeId num_edges, core::Rng &rng,
              const RmatParams &params = RmatParams{});

/** Uniform (Erdos-Renyi G(n, m)) random graph, for tests/baselines. */
CooGraph erdosRenyi(NodeId num_nodes, EdgeId num_edges, core::Rng &rng);

/**
 * Community-structured label assignment: runs @p num_classes seeded
 * BFS frontiers over the graph so labels correlate with topology (as
 * they do in real node-classification datasets), then flips a
 * @p noise fraction of labels uniformly at random.
 */
std::vector<int32_t> communityLabels(const CooGraph &g,
                                     int32_t num_classes,
                                     core::Rng &rng,
                                     double noise = 0.1);

} // namespace graph
} // namespace gnnbench

#endif // GNNBENCH_GRAPH_GENERATE_H
