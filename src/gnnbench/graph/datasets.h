/**
 * @file
 * The six benchmark datasets of the paper (Table 1), reproduced as
 * statistics-matched synthetic graphs.
 *
 * Each dataset records the published node/edge/feature/class counts
 * and the fixed train/val/test split fractions.  Because the original
 * raw data is not available offline, loadDataset() synthesizes an
 * R-MAT graph matched to those statistics, with class-correlated node
 * features and community-correlated labels (see DESIGN.md §1).  The
 * three largest graphs carry a default down-scale factor sized for a
 * single-core CI machine; pass scale_mult > 1 to enlarge.
 */

#ifndef GNNBENCH_GRAPH_DATASETS_H
#define GNNBENCH_GRAPH_DATASETS_H

#include <string>
#include <vector>

#include "gnnbench/core/tensor.h"
#include "gnnbench/graph/coo.h"

namespace gnnbench {
namespace graph {

/** Published statistics of one benchmark dataset (paper Table 1). */
struct DatasetInfo
{
    std::string name;
    std::string description;
    NodeId numNodes;
    EdgeId numEdges;
    int64_t numFeatures;
    int32_t numClasses;
    double trainFrac;
    double valFrac;
    double testFrac;
    /** Default down-scale applied by loadDataset (1.0 = full size). */
    double defaultScale;
};

/** An in-memory node-classification dataset. */
struct Dataset
{
    DatasetInfo info;           ///< published statistics
    double scale = 1.0;         ///< actually applied scale
    CooGraph graph;             ///< undirected (symmetrized) edges
    core::Tensor features;      ///< numNodes x numFeatures
    std::vector<int32_t> labels;
    std::vector<NodeId> trainIdx;
    std::vector<NodeId> valIdx;
    std::vector<NodeId> testIdx;

    NodeId numNodes() const { return graph.numNodes; }
    EdgeId numEdges() const { return graph.numEdges(); }
};

/** All six datasets in the paper's Table 1 order. */
const std::vector<DatasetInfo> &datasetTable();

/** Look up a dataset by (case-insensitive) name; fatal if unknown. */
const DatasetInfo &datasetInfo(const std::string &name);

/**
 * Synthesize the dataset at info.defaultScale * scale_mult, fully
 * deterministic in @p seed.
 */
Dataset loadDataset(const std::string &name, double scale_mult = 1.0,
                    uint64_t seed = 42);

/** Names of all datasets, in Table 1 order. */
std::vector<std::string> datasetNames();

} // namespace graph
} // namespace gnnbench

#endif // GNNBENCH_GRAPH_DATASETS_H
