#include "gnnbench/graph/partition.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "gnnbench/check/validate.h"

namespace gnnbench {
namespace graph {

namespace {

/** Weighted graph used on the coarse levels. */
struct WGraph
{
    NodeId n = 0;
    std::vector<EdgeId> indptr;
    std::vector<NodeId> adj;
    std::vector<int64_t> wadj;   ///< edge weights
    std::vector<int64_t> wnode;  ///< node weights
};

WGraph
fromCsr(const CsrGraph &g)
{
    WGraph w;
    w.n = g.numRows;
    w.indptr = g.indptr;
    w.adj = g.indices;
    w.wadj.assign(g.indices.size(), 1);
    w.wnode.assign(g.numRows, 1);
    return w;
}

/**
 * One level of heavy-edge-matching coarsening.  Returns the coarse
 * graph and fills @p coarse_of with the fine -> coarse node map.
 */
WGraph
coarsen(const WGraph &g, core::Rng &rng, std::vector<NodeId> &coarse_of)
{
    coarse_of.assign(g.n, -1);
    std::vector<NodeId> match(g.n, -1);
    auto order = rng.permutation(g.n);
    NodeId coarse_n = 0;
    for (NodeId u : order) {
        if (match[u] != -1)
            continue;
        // Pick the unmatched neighbor with the heaviest edge.
        NodeId best = -1;
        int64_t best_w = -1;
        for (EdgeId e = g.indptr[u]; e < g.indptr[u + 1]; ++e) {
            const NodeId v = g.adj[e];
            if (v != u && match[v] == -1 && g.wadj[e] > best_w) {
                best_w = g.wadj[e];
                best = v;
            }
        }
        match[u] = (best == -1) ? u : best;
        if (best != -1)
            match[best] = u;
        coarse_of[u] = coarse_n;
        if (best != -1)
            coarse_of[best] = coarse_n;
        ++coarse_n;
    }
    // Build the coarse graph, merging parallel edges with a
    // timestamped dense accumulator.
    WGraph c;
    c.n = coarse_n;
    c.wnode.assign(coarse_n, 0);
    for (NodeId u = 0; u < g.n; ++u)
        c.wnode[coarse_of[u]] += g.wnode[u];

    std::vector<NodeId> mark(coarse_n, -1);
    std::vector<int64_t> acc(coarse_n, 0);
    std::vector<NodeId> touched;
    c.indptr.assign(coarse_n + 1, 0);

    // Group fine nodes by coarse id so each coarse row is built once.
    std::vector<NodeId> members(g.n);
    std::vector<EdgeId> member_ptr(coarse_n + 1, 0);
    for (NodeId u = 0; u < g.n; ++u)
        ++member_ptr[coarse_of[u] + 1];
    for (NodeId cidx = 0; cidx < coarse_n; ++cidx)
        member_ptr[cidx + 1] += member_ptr[cidx];
    {
        std::vector<EdgeId> cursor(member_ptr.begin(),
                                   member_ptr.end() - 1);
        for (NodeId u = 0; u < g.n; ++u)
            members[cursor[coarse_of[u]]++] = u;
    }

    for (NodeId cu = 0; cu < coarse_n; ++cu) {
        touched.clear();
        for (EdgeId mi = member_ptr[cu]; mi < member_ptr[cu + 1]; ++mi) {
            const NodeId u = members[mi];
            for (EdgeId e = g.indptr[u]; e < g.indptr[u + 1]; ++e) {
                const NodeId cv = coarse_of[g.adj[e]];
                if (cv == cu)
                    continue;
                if (mark[cv] != cu) {
                    mark[cv] = cu;
                    acc[cv] = 0;
                    touched.push_back(cv);
                }
                acc[cv] += g.wadj[e];
            }
        }
        c.indptr[cu + 1] = c.indptr[cu] + touched.size();
        for (NodeId cv : touched) {
            c.adj.push_back(cv);
            c.wadj.push_back(acc[cv]);
        }
    }
    return c;
}

/** Greedy BFS initial partition of the coarsest graph into k parts. */
std::vector<int32_t>
initialPartition(const WGraph &g, int32_t k, core::Rng &rng,
                 double balance)
{
    std::vector<int32_t> part(g.n, -1);
    const int64_t total =
        std::accumulate(g.wnode.begin(), g.wnode.end(), int64_t{0});
    const double target = static_cast<double>(total) / k;
    const double cap = balance * target;

    auto order = rng.permutation(g.n);
    size_t seed_cursor = 0;
    std::vector<int64_t> weight(k, 0);

    for (int32_t p = 0; p < k; ++p) {
        // Find an unassigned seed.
        while (seed_cursor < order.size() && part[order[seed_cursor]] != -1)
            ++seed_cursor;
        if (seed_cursor >= order.size())
            break;
        std::queue<NodeId> bfs;
        bfs.push(order[seed_cursor]);
        part[order[seed_cursor]] = p;
        weight[p] += g.wnode[order[seed_cursor]];
        while (!bfs.empty() && weight[p] < target) {
            const NodeId u = bfs.front();
            bfs.pop();
            for (EdgeId e = g.indptr[u]; e < g.indptr[u + 1]; ++e) {
                const NodeId v = g.adj[e];
                if (part[v] == -1 && weight[p] + g.wnode[v] <= cap) {
                    part[v] = p;
                    weight[p] += g.wnode[v];
                    bfs.push(v);
                    if (weight[p] >= target)
                        break;
                }
            }
        }
    }
    // Leftovers: lightest part.
    for (NodeId u = 0; u < g.n; ++u) {
        if (part[u] != -1)
            continue;
        const auto lightest = static_cast<int32_t>(std::distance(
            weight.begin(),
            std::min_element(weight.begin(), weight.end())));
        part[u] = lightest;
        weight[lightest] += g.wnode[u];
    }
    return part;
}

/** One greedy boundary-move refinement pass. */
void
refine(const WGraph &g, std::vector<int32_t> &part, int32_t k,
       core::Rng &rng, double balance, int iters)
{
    std::vector<int64_t> weight(k, 0);
    for (NodeId u = 0; u < g.n; ++u)
        weight[part[u]] += g.wnode[u];
    const int64_t total =
        std::accumulate(weight.begin(), weight.end(), int64_t{0});
    const double cap = balance * static_cast<double>(total) / k;

    std::vector<int64_t> conn(k, 0);
    std::vector<int32_t> touched;
    for (int it = 0; it < iters; ++it) {
        bool moved = false;
        auto order = rng.permutation(g.n);
        for (NodeId u : order) {
            const int32_t cur = part[u];
            touched.clear();
            for (EdgeId e = g.indptr[u]; e < g.indptr[u + 1]; ++e) {
                // A self-loop stays intact under any assignment, so it
                // must not inflate conn[cur] (that biases the gain
                // conn[best] - conn[cur] against every boundary move).
                if (g.adj[e] == u)
                    continue;
                const int32_t pv = part[g.adj[e]];
                if (conn[pv] == 0)
                    touched.push_back(pv);
                conn[pv] += g.wadj[e];
            }
            int32_t best = cur;
            int64_t best_gain = 0;
            for (int32_t pv : touched) {
                if (pv == cur)
                    continue;
                const int64_t gain = conn[pv] - conn[cur];
                if (gain > best_gain &&
                    weight[pv] + g.wnode[u] <= cap) {
                    best_gain = gain;
                    best = pv;
                }
            }
            for (int32_t pv : touched)
                conn[pv] = 0;
            if (best != cur) {
                weight[cur] -= g.wnode[u];
                weight[best] += g.wnode[u];
                part[u] = best;
                moved = true;
            }
        }
        if (!moved)
            break;
    }
}

} // namespace

EdgeId
countCutEdges(const CsrGraph &g, const std::vector<int32_t> &assignment)
{
    EdgeId cut = 0;
    for (NodeId u = 0; u < g.numRows; ++u)
        for (EdgeId e = g.indptr[u]; e < g.indptr[u + 1]; ++e) {
            const NodeId v = g.indices[e];
            // Self-loops are never cut: both endpoints are the same
            // node, so they stay rank-local under any assignment.
            if (v == u)
                continue;
            if (assignment[u] != assignment[v])
                ++cut;
        }
    return cut;
}

PartitionResult
partitionGraph(const CsrGraph &g, int32_t k, core::Rng &rng,
               const PartitionOptions &opts)
{
    GNNBENCH_CHECK(g.numRows == g.numCols,
                   "partitionGraph expects a square adjacency");
    GNNBENCH_CHECK(k > 0, "partitionGraph: k must be positive");

    PartitionResult result;
    result.numParts = k;

    if (k >= g.numRows) {
        // Degenerate: at most one node per part.
        result.assignment.resize(g.numRows);
        for (NodeId u = 0; u < g.numRows; ++u)
            result.assignment[u] = u % k;
    } else {
        // Coarsening phase.
        std::vector<WGraph> levels;
        std::vector<std::vector<NodeId>> maps;
        levels.push_back(fromCsr(g));
        const NodeId stop_n = std::max<NodeId>(
            static_cast<NodeId>(opts.coarsenToFactor) * k, 256);
        while (levels.back().n > stop_n) {
            std::vector<NodeId> coarse_of;
            WGraph c = coarsen(levels.back(), rng, coarse_of);
            if (c.n >= levels.back().n * 95 / 100)
                break;  // matching stalled (e.g., star graphs)
            maps.push_back(std::move(coarse_of));
            levels.push_back(std::move(c));
        }
        // Initial partition + refinement on the coarsest level.
        auto part = initialPartition(levels.back(), k, rng, opts.balance);
        refine(levels.back(), part, k, rng, opts.balance,
               opts.refineIters);
        // Uncoarsen with refinement at each level.
        for (size_t lvl = maps.size(); lvl-- > 0;) {
            const auto &map = maps[lvl];
            std::vector<int32_t> fine_part(map.size());
            for (size_t u = 0; u < map.size(); ++u)
                fine_part[u] = part[map[u]];
            part = std::move(fine_part);
            refine(levels[lvl], part, k, rng, opts.balance,
                   opts.refineIters);
        }
        result.assignment = std::move(part);
    }

    result.cutEdges = countCutEdges(g, result.assignment);
    std::vector<NodeId> sizes(k, 0);
    for (int32_t p : result.assignment)
        ++sizes[p];
    result.maxPartSize = *std::max_element(sizes.begin(), sizes.end());
    if (check::enabled())
        check::require(check::checkPartition(g, result));
    return result;
}

} // namespace graph
} // namespace gnnbench
