/**
 * @file
 * Cache-aware graph reordering — the locality preprocessing pass.
 *
 * Sparse aggregation is bandwidth-bound: each stored entry gathers a
 * whole feature row, so the cache hit rate of those gathers is set by
 * how close together a row's neighbor ids are.  Relabeling nodes so
 * that neighbors get nearby ids shrinks the index *bandwidth*
 * (|row - col| over stored entries) and turns scattered gathers into
 * near-sequential streams.  Two classic permutations are provided:
 *
 *  - ReorderMethod::Rcm — reverse Cuthill-McKee: BFS from a
 *    minimum-degree seed per component, visiting neighbors in
 *    ascending-degree order, final order reversed.  The standard
 *    bandwidth-minimizing heuristic; best on mesh-like graphs.
 *  - ReorderMethod::DegreeSort — stable descending-degree relabeling:
 *    hubs become the lowest ids, so the hottest feature rows pack into
 *    one contiguous cache-resident prefix.  Best on power-law graphs.
 *
 * A Reordering is a pure relabeling: applyReordering() relabels the
 * graph while reorderDataset() additionally permutes features, labels,
 * and split indices the same way, so any model/bench result is
 * *permutation-equivalent* to the unordered run (bit-equal for
 * order-insensitive reduces; equal up to float accumulation order for
 * sum/mean — tests/test_reorder.cc checks both through gnncheck).
 */

#ifndef GNNBENCH_GRAPH_REORDER_H
#define GNNBENCH_GRAPH_REORDER_H

#include <string_view>
#include <vector>

#include "gnnbench/core/tensor.h"
#include "gnnbench/graph/coo.h"
#include "gnnbench/graph/csr.h"
#include "gnnbench/graph/datasets.h"

namespace gnnbench {
namespace graph {

/** Node relabeling strategies for the locality pass. */
enum class ReorderMethod
{
    None,        ///< keep original ids
    DegreeSort,  ///< stable descending-degree relabel
    Rcm,         ///< reverse Cuthill-McKee
};

const char *reorderMethodName(ReorderMethod m);

/** "none/degree/rcm" — for error messages and help text. */
const char *validReorderMethodList();

/** Parse a name from validReorderMethodList(); false on unknown. */
bool parseReorderMethod(std::string_view name, ReorderMethod *out);

/**
 * A node relabeling, stored both ways:
 *  - perm[new_id] = old_id (the visit order that defines the labels),
 *  - inverse[old_id] = new_id.
 */
struct Reordering
{
    std::vector<NodeId> perm;
    std::vector<NodeId> inverse;

    NodeId numNodes() const
    {
        return static_cast<NodeId>(perm.size());
    }

    /** Fatal unless perm/inverse are mutually inverse permutations. */
    void validate() const;
};

/** The identity relabeling on @p n nodes. */
Reordering identityOrder(NodeId n);

/** Stable descending-degree order over @p adj's rows (square CSR). */
Reordering degreeSortOrder(const CsrGraph &adj);

/** Reverse Cuthill-McKee order over @p adj (square CSR; every
 *  component is seeded at its minimum-degree node). */
Reordering rcmOrder(const CsrGraph &adj);

/** Dispatch on @p m; None returns the identity. */
Reordering computeReordering(const CsrGraph &adj, ReorderMethod m);

/**
 * Relabel a square CSR: new row r holds the neighbors of old row
 * perm[r], each mapped through inverse and re-sorted ascending (the
 * canonical CSR neighbor order).
 */
CsrGraph applyReordering(const CsrGraph &adj, const Reordering &r);

/** Relabel a COO edge list in place-order (edge order preserved). */
CooGraph applyReordering(const CooGraph &g, const Reordering &r);

/** out[new_id, :] = x[perm[new_id], :]. */
core::Tensor permuteRows(const core::Tensor &x, const Reordering &r);

/** out[new_id] = labels[perm[new_id]]. */
std::vector<int32_t> permuteLabels(const std::vector<int32_t> &labels,
                                   const Reordering &r);

/** Map node ids old -> new (split indices, sampled seeds, ...). */
std::vector<NodeId> remapIds(const std::vector<NodeId> &ids,
                             const Reordering &r);

/**
 * Apply @p m to a whole dataset in place: graph, features, labels,
 * and the three split index lists all move through the same
 * permutation, so training results are permutation-equivalent.
 * Returns the reordering used (identity for None).
 */
Reordering reorderDataset(Dataset &dataset, ReorderMethod m);

/**
 * Mean |row - col| over all stored entries — the locality figure of
 * merit the reordering passes minimize.  0 for empty graphs.
 */
double averageBandwidth(const CsrGraph &adj);

} // namespace graph
} // namespace gnnbench

#endif // GNNBENCH_GRAPH_REORDER_H
