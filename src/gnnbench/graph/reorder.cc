/**
 * @file
 * RCM and degree-sort node relabelings (see reorder.h for the model).
 */

#include "gnnbench/graph/reorder.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "gnnbench/core/common.h"
#include "gnnbench/graph/convert.h"

namespace gnnbench {
namespace graph {

const char *
reorderMethodName(ReorderMethod m)
{
    switch (m) {
    case ReorderMethod::None:
        return "none";
    case ReorderMethod::DegreeSort:
        return "degree";
    case ReorderMethod::Rcm:
        return "rcm";
    }
    return "?";
}

const char *
validReorderMethodList()
{
    return "none/degree/rcm";
}

bool
parseReorderMethod(std::string_view name, ReorderMethod *out)
{
    if (name == "none") {
        *out = ReorderMethod::None;
        return true;
    }
    if (name == "degree" || name == "degree_sort") {
        *out = ReorderMethod::DegreeSort;
        return true;
    }
    if (name == "rcm") {
        *out = ReorderMethod::Rcm;
        return true;
    }
    return false;
}

void
Reordering::validate() const
{
    const NodeId n = numNodes();
    GNNBENCH_CHECK(inverse.size() == perm.size(),
                   "Reordering: perm/inverse size mismatch");
    for (NodeId v = 0; v < n; ++v) {
        const NodeId old = perm[v];
        GNNBENCH_CHECK(old >= 0 && old < n,
                       "Reordering: perm entry out of range");
        GNNBENCH_CHECK(inverse[old] == v,
                       "Reordering: inverse does not invert perm");
    }
}

Reordering
identityOrder(NodeId n)
{
    Reordering r;
    r.perm.resize(static_cast<size_t>(n));
    std::iota(r.perm.begin(), r.perm.end(), NodeId{0});
    r.inverse = r.perm;
    return r;
}

namespace {

Reordering
fromVisitOrder(std::vector<NodeId> perm)
{
    Reordering r;
    r.inverse.resize(perm.size());
    for (size_t v = 0; v < perm.size(); ++v)
        r.inverse[static_cast<size_t>(perm[v])] =
            static_cast<NodeId>(v);
    r.perm = std::move(perm);
    return r;
}

} // namespace

Reordering
degreeSortOrder(const CsrGraph &adj)
{
    GNNBENCH_CHECK(adj.numRows == adj.numCols,
                   "degreeSortOrder: adjacency must be square");
    const NodeId n = adj.numRows;
    std::vector<NodeId> order(static_cast<size_t>(n));
    std::iota(order.begin(), order.end(), NodeId{0});
    // Stable: equal-degree nodes keep their original relative ids, so
    // the permutation is deterministic and locality inside a degree
    // class is preserved.
    std::stable_sort(order.begin(), order.end(),
                     [&](NodeId a, NodeId b) {
                         return adj.degree(a) > adj.degree(b);
                     });
    return fromVisitOrder(std::move(order));
}

Reordering
rcmOrder(const CsrGraph &adj)
{
    GNNBENCH_CHECK(adj.numRows == adj.numCols,
                   "rcmOrder: adjacency must be square");
    const NodeId n = adj.numRows;
    std::vector<NodeId> order;
    order.reserve(static_cast<size_t>(n));
    std::vector<char> visited(static_cast<size_t>(n), 0);

    // Component seeds in ascending (degree, id) order: each BFS starts
    // from a pseudo-peripheral-ish minimum-degree node.
    std::vector<NodeId> seeds(static_cast<size_t>(n));
    std::iota(seeds.begin(), seeds.end(), NodeId{0});
    std::stable_sort(seeds.begin(), seeds.end(),
                     [&](NodeId a, NodeId b) {
                         return adj.degree(a) < adj.degree(b);
                     });

    std::vector<NodeId> neigh;
    for (const NodeId seed : seeds) {
        if (visited[static_cast<size_t>(seed)])
            continue;
        visited[static_cast<size_t>(seed)] = 1;
        // order doubles as the BFS queue: everything appended is
        // already visited, and `head` walks it exactly once.
        size_t head = order.size();
        order.push_back(seed);
        while (head < order.size()) {
            const NodeId u = order[head++];
            neigh.assign(adj.rowBegin(u), adj.rowEnd(u));
            std::stable_sort(neigh.begin(), neigh.end(),
                             [&](NodeId a, NodeId b) {
                                 return adj.degree(a) < adj.degree(b);
                             });
            for (const NodeId v : neigh) {
                if (visited[static_cast<size_t>(v)])
                    continue;
                visited[static_cast<size_t>(v)] = 1;
                order.push_back(v);
            }
        }
    }
    std::reverse(order.begin(), order.end());
    return fromVisitOrder(std::move(order));
}

Reordering
computeReordering(const CsrGraph &adj, ReorderMethod m)
{
    switch (m) {
    case ReorderMethod::None:
        return identityOrder(adj.numRows);
    case ReorderMethod::DegreeSort:
        return degreeSortOrder(adj);
    case ReorderMethod::Rcm:
        return rcmOrder(adj);
    }
    GNNBENCH_CHECK(false, "computeReordering: unknown method");
    return identityOrder(adj.numRows);
}

CsrGraph
applyReordering(const CsrGraph &adj, const Reordering &r)
{
    GNNBENCH_CHECK(adj.numRows == adj.numCols,
                   "applyReordering: adjacency must be square");
    GNNBENCH_CHECK(r.numNodes() == adj.numRows,
                   "applyReordering: permutation size mismatch");
    const NodeId n = adj.numRows;
    CsrGraph out;
    out.numRows = n;
    out.numCols = n;
    out.indptr.resize(static_cast<size_t>(n) + 1);
    out.indices.resize(adj.indices.size());
    out.indptr[0] = 0;
    for (NodeId v = 0; v < n; ++v) {
        const NodeId old = r.perm[v];
        const EdgeId deg = adj.degree(old);
        EdgeId w = out.indptr[v];
        for (const NodeId *p = adj.rowBegin(old);
             p != adj.rowEnd(old); ++p)
            out.indices[static_cast<size_t>(w++)] =
                r.inverse[static_cast<size_t>(*p)];
        out.indptr[v + 1] = out.indptr[v] + deg;
        std::sort(out.indices.begin() +
                      static_cast<ptrdiff_t>(out.indptr[v]),
                  out.indices.begin() +
                      static_cast<ptrdiff_t>(out.indptr[v + 1]));
    }
    return out;
}

CooGraph
applyReordering(const CooGraph &g, const Reordering &r)
{
    GNNBENCH_CHECK(r.numNodes() == g.numNodes,
                   "applyReordering: permutation size mismatch");
    CooGraph out;
    out.numNodes = g.numNodes;
    out.src.resize(g.src.size());
    out.dst.resize(g.dst.size());
    for (size_t e = 0; e < g.src.size(); ++e) {
        out.src[e] = r.inverse[static_cast<size_t>(g.src[e])];
        out.dst[e] = r.inverse[static_cast<size_t>(g.dst[e])];
    }
    return out;
}

core::Tensor
permuteRows(const core::Tensor &x, const Reordering &r)
{
    GNNBENCH_CHECK(x.rows() == r.numNodes(),
                   "permuteRows: row count mismatch");
    const int64_t f = x.cols();
    core::Tensor out = core::Tensor::empty(x.rows(), f);
    for (NodeId v = 0; v < r.numNodes(); ++v)
        std::memcpy(out.row(v), x.row(r.perm[v]),
                    static_cast<size_t>(f) * sizeof(float));
    return out;
}

std::vector<int32_t>
permuteLabels(const std::vector<int32_t> &labels, const Reordering &r)
{
    GNNBENCH_CHECK(labels.size() == r.perm.size(),
                   "permuteLabels: label count mismatch");
    std::vector<int32_t> out(labels.size());
    for (size_t v = 0; v < labels.size(); ++v)
        out[v] = labels[static_cast<size_t>(r.perm[v])];
    return out;
}

std::vector<NodeId>
remapIds(const std::vector<NodeId> &ids, const Reordering &r)
{
    std::vector<NodeId> out(ids.size());
    for (size_t i = 0; i < ids.size(); ++i) {
        GNNBENCH_CHECK(ids[i] >= 0 && ids[i] < r.numNodes(),
                       "remapIds: id out of range");
        out[i] = r.inverse[static_cast<size_t>(ids[i])];
    }
    return out;
}

Reordering
reorderDataset(Dataset &dataset, ReorderMethod m)
{
    if (m == ReorderMethod::None)
        return identityOrder(dataset.graph.numNodes);
    const CsrGraph adj = cooToCsr(dataset.graph);
    Reordering r = computeReordering(adj, m);
    dataset.graph = applyReordering(dataset.graph, r);
    dataset.features = permuteRows(dataset.features, r);
    dataset.labels = permuteLabels(dataset.labels, r);
    dataset.trainIdx = remapIds(dataset.trainIdx, r);
    dataset.valIdx = remapIds(dataset.valIdx, r);
    dataset.testIdx = remapIds(dataset.testIdx, r);
    return r;
}

double
averageBandwidth(const CsrGraph &adj)
{
    if (adj.numEdges() == 0)
        return 0.0;
    double total = 0.0;
    for (NodeId r = 0; r < adj.numRows; ++r)
        for (const NodeId *p = adj.rowBegin(r); p != adj.rowEnd(r);
             ++p)
            total += std::abs(static_cast<double>(r) -
                              static_cast<double>(*p));
    return total / static_cast<double>(adj.numEdges());
}

} // namespace graph
} // namespace gnnbench
