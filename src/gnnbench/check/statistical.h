/**
 * @file
 * gnncheck: statistical validator for GraphSAINT-style subgraph
 * estimators.
 *
 * GraphSAINT's training loss is a Horvitz-Thompson estimate: each
 * node's loss contribution is divided by its inclusion probability,
 * so the *expected* normalized subgraph loss equals the full-batch
 * loss.  saintEstimatorStats() estimates inclusion probabilities
 * empirically over one set of draws, then computes the normalized
 * estimate over a second, independent set and reports a z-score of
 * the estimate against the full-batch value.  checkSaintUnbiased()
 * turns it into a Result with a configurable z limit.
 */

#ifndef GNNBENCH_CHECK_STATISTICAL_H
#define GNNBENCH_CHECK_STATISTICAL_H

#include <functional>
#include <vector>

#include "gnnbench/check/validate.h"

namespace gnnbench {
namespace check {

/** Outcome of the unbiasedness measurement. */
struct EstimatorStats
{
    double fullMean = 0;   ///< mean of value over all nodes
    double htMean = 0;     ///< mean HT estimate across draws
    double stdError = 0;   ///< standard error of the HT mean
    double zScore = 0;     ///< (htMean - fullMean) / stdError
    int probDraws = 0;
    int estimateDraws = 0;
};

/** One subgraph draw: the sampled node set (draw index for seeding). */
using NodeSetDraw = std::function<std::vector<NodeId>(int draw)>;

/**
 * Measure estimator bias: inclusion probabilities from the first
 * @p prob_draws draws, HT estimates of mean(value) from the next
 * @p estimate_draws draws.  @p value is the per-node quantity (e.g.
 * per-node loss); draws see draw indices 0..prob+estimate-1.
 */
EstimatorStats saintEstimatorStats(const std::vector<double> &value,
                                   const NodeSetDraw &draw,
                                   int prob_draws,
                                   int estimate_draws);

/** Fail when |z| exceeds @p z_limit (default generous: 5 sigma). */
Result checkSaintUnbiased(const EstimatorStats &stats,
                          double z_limit = 5.0);

} // namespace check
} // namespace gnnbench

#endif // GNNBENCH_CHECK_STATISTICAL_H
