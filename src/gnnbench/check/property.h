/**
 * @file
 * gnncheck: seeded property-based testing harness.
 *
 * QuickCheck-style flow: a single uint64 seed deterministically
 * generates one random graph case (size, density, and degenerate
 * shapes — empty graph, single node, star, path, self-loops,
 * duplicate edges, isolated nodes, partition-shaped clusters), a
 * property is a function from a
 * case to a check::Result, and checkProperty() runs N seeded cases.
 * On failure it greedily *shrinks* the counterexample (fewer edges,
 * fewer nodes) while the property keeps failing, then prints the
 * repro seed and the shrunk case so the failure is reproducible from
 * the log alone.
 */

#ifndef GNNBENCH_CHECK_PROPERTY_H
#define GNNBENCH_CHECK_PROPERTY_H

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "gnnbench/check/validate.h"
#include "gnnbench/graph/coo.h"

namespace gnnbench {
namespace check {

/** The generator's case families. */
enum class GraphShape
{
    Sparse,          ///< uniform random, low density
    Dense,           ///< uniform random, high density
    Skewed,          ///< preferential-attachment-like degree skew
    Empty,           ///< nodes, no edges
    SingleNode,      ///< one node (possibly with a self-loop)
    Star,            ///< hub node with spokes in both directions
    Path,            ///< chain
    SelfLoops,       ///< random graph plus self-loops
    DuplicateEdges,  ///< random graph with repeated edges
    IsolatedNodes,   ///< edges confined to a node prefix
    Clustered,       ///< dense clusters, sparse cut (partition-shaped)
};

const char *shapeName(GraphShape s);

/** One generated case: the seed that produced it plus the graph. */
struct GraphCase
{
    uint64_t seed = 0;
    GraphShape shape = GraphShape::Sparse;
    graph::CooGraph coo;
};

/** Deterministically generate the case for @p seed. */
GraphCase generateGraphCase(uint64_t seed);

/** Derive the seed of case @p index under base seed @p base. */
uint64_t caseSeed(uint64_t base, int index);

/** Smaller candidate graphs for shrinking (may be empty). */
std::vector<graph::CooGraph> shrinkGraph(const graph::CooGraph &g);

/** A property maps a case to ok / violation message. */
using Property = std::function<Result(const GraphCase &)>;

struct PropertyOptions
{
    int numCases = 200;
    uint64_t baseSeed = 42;
    /** Cap on accepted shrink steps. */
    int maxShrinkSteps = 64;
    /** Failure report sink; nullptr = stderr. */
    std::ostream *out = nullptr;
};

/**
 * Run @p fn on numCases seeded cases.  Returns true if all pass;
 * otherwise shrinks the first failing case, prints a report with the
 * repro seed, and returns false.
 */
bool checkProperty(const std::string &name, const Property &fn,
                   const PropertyOptions &opts = {});

} // namespace check
} // namespace gnnbench

#endif // GNNBENCH_CHECK_PROPERTY_H
