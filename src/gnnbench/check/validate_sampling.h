/**
 * @file
 * gnncheck: validators for sampler outputs of both frameworks.
 *
 * These are deeper than the structural validate() methods on the
 * sample types: each checker verifies the output *against the global
 * graph it was sampled from* — fanout bounds, induced-subgraph edge
 * closure (every sampled edge exists in the graph) and completeness
 * (every induced edge is present), and mapping bijectivity.  They are
 * the checks the GNNBENCH_VALIDATE hooks run at the end of every
 * sampler's sample() and on every batch a dataloader delivers.
 */

#ifndef GNNBENCH_CHECK_VALIDATE_SAMPLING_H
#define GNNBENCH_CHECK_VALIDATE_SAMPLING_H

#include <vector>

#include "gnnbench/check/validate.h"
#include "gnnbench/pygx/message_passing.h"
#include "gnnbench/sampling/subgraph.h"

namespace gnnbench {
namespace check {

/**
 * One dglx bipartite block against the global in-adjacency: dst is a
 * prefix of src, src ids are unique and in range, every row keeps at
 * most @p fanout edges (and no more than the destination's global
 * in-degree), and each sampled edge — with multiplicity — exists in
 * the global graph.  @p fanout <= 0 skips the fanout bound.
 */
Result checkBlock(const sampling::Block &blk,
                  const graph::CsrGraph &global_csc, int fanout);

/** A full dglx neighbor sample: per-block checks plus layer wiring
 *  (blocks[l].dst == blocks[l+1].src, last dst == seeds). */
Result checkNeighborSample(const sampling::NeighborSample &smp,
                           const graph::CsrGraph &global_csc,
                           const std::vector<int> &fanouts);

/**
 * A dglx induced sample against the global out-adjacency: the node
 * mapping is a bijection onto unique in-range global ids and the
 * local adjacency equals the reference induced subgraph exactly
 * (closure and completeness in one comparison).
 */
Result checkInducedSample(const sampling::InducedSample &smp,
                          const graph::CsrGraph &global_csr);

/**
 * A pygx edge batch against the global in-adjacency (pygx extraction
 * scans CSC rows, emitting src=local(v), dst=local(u) per graph edge
 * v->u): node bijectivity, endpoints in range, and the edge multiset
 * grouped by destination equals the reference induced subgraph.
 */
Result checkEdgeBatch(const pygx::EdgeBatch &batch,
                      const graph::CsrGraph &global_csc);

/** One pygx sampled layer (mirror of checkBlock for edge lists). */
Result checkLayerBatch(const pygx::LayerBatch &layer,
                       const graph::CsrGraph &global_csc, int fanout);

/** A full pygx neighbor batch: per-layer checks plus wiring. */
Result checkNeighborBatch(const pygx::NeighborBatch &batch,
                          const graph::CsrGraph &global_csc,
                          const std::vector<int> &fanouts);

} // namespace check
} // namespace gnnbench

#endif // GNNBENCH_CHECK_VALIDATE_SAMPLING_H
