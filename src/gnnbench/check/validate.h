/**
 * @file
 * gnncheck: runtime invariant validators for the graph containers.
 *
 * The paper's efficiency comparisons are only meaningful if both
 * framework reimplementations compute the same thing on well-formed
 * structures, so this module provides cheap, composable checkers for
 * COO/CSR/CSC well-formedness and partition validity.  Each checker
 * returns a Result (ok + human-readable message) so tests can compose
 * them; require() escalates a failure to a fatal user error, carrying
 * any active ScopedContext text (e.g. "repro seed=...") so the crash
 * message is actionable.
 *
 * The in-situ hooks in graph/convert, graph/partition, the samplers,
 * and the dataloaders consult enabled(): off by default (a relaxed
 * atomic load is the only cost), switched on by the GNNBENCH_VALIDATE
 * environment variable, the CMake option of the same name, or
 * setEnabled() from tests.
 */

#ifndef GNNBENCH_CHECK_VALIDATE_H
#define GNNBENCH_CHECK_VALIDATE_H

#include <string>
#include <utility>

#include "gnnbench/graph/coo.h"
#include "gnnbench/graph/csr.h"
#include "gnnbench/graph/partition.h"

namespace gnnbench {
namespace check {

/** Outcome of one validator: ok, or a message naming the violation. */
struct Result
{
    bool ok = true;
    std::string message;

    explicit operator bool() const { return ok; }

    static Result pass() { return {}; }

    static Result
    fail(std::string msg)
    {
        return {false, std::move(msg)};
    }
};

/**
 * Whether the in-situ validation hooks are active.  Resolution order:
 * setEnabled() override, then the GNNBENCH_VALIDATE environment
 * variable ("0"/"off"/"false" disable, anything else enables), then
 * the compile-time default (-DGNNBENCH_VALIDATE=ON).
 */
bool enabled();

/** Force validation on/off for this process (tests). */
void setEnabled(bool on);

/**
 * Pushes a line of context (e.g. "repro seed=0x1234") onto a
 * thread-local stack for the lifetime of the scope; require()
 * appends the active context to its fatal message so a validator
 * tripping deep inside a sampler still prints how to reproduce it.
 */
class ScopedContext
{
  public:
    explicit ScopedContext(std::string text);
    ~ScopedContext();

    ScopedContext(const ScopedContext &) = delete;
    ScopedContext &operator=(const ScopedContext &) = delete;
};

/** The concatenated active context lines ("" when none). */
std::string contextString();

/** Escalate a failed Result to a fatal error (with context). */
void require(const Result &r);

/** Optional strictness knobs for checkCsr. */
struct CsrOptions
{
    /** Column indices within each row must be ascending. */
    bool requireSortedRows = false;
    /** No repeated column index within a row (no multi-edges). */
    bool requireUniqueCols = false;
    /** numRows == numCols (square adjacency). */
    bool requireSquare = false;
};

/** COO well-formedness: matching arrays, endpoints in range. */
Result checkCoo(const graph::CooGraph &g);

/**
 * CSR/CSC well-formedness: indptr sized numRows+1, starts at 0,
 * monotone, degree-sum == nnz (indptr.back() == indices.size()),
 * all column ids in [0, numCols); optional sortedness/uniqueness.
 */
Result checkCsr(const graph::CsrGraph &g, const CsrOptions &opts = {});

/**
 * Partition validity against the graph it was computed on: the
 * assignment covers every node with exactly one part id in
 * [0, numParts) (cover + disjointness), the reported maxPartSize
 * matches a recount, and the edge-cut accounting matches an
 * independent recount over the adjacency.
 */
Result checkPartition(const graph::CsrGraph &g,
                      const graph::PartitionResult &p);

} // namespace check
} // namespace gnnbench

#endif // GNNBENCH_CHECK_VALIDATE_H
