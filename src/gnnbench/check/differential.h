/**
 * @file
 * gnncheck: differential fuzzing helpers across dglx and pygx.
 *
 * The two frameworks implement the same GNN mathematics with
 * different machinery; these helpers build identically-initialized
 * layers/models in both (same weight-RNG sequence), run forward,
 * backward, and one optimizer step, and compare outputs, gradients,
 * parameters, and losses within tolerance.  Randomized samplers are
 * compared distributionally over many draws (they consume their RNG
 * streams differently, so per-draw equality is not expected).
 *
 * All helpers accept the property harness's GraphCase, so the same
 * seeded generator drives both the invariant properties and the
 * differential fuzz.
 */

#ifndef GNNBENCH_CHECK_DIFFERENTIAL_H
#define GNNBENCH_CHECK_DIFFERENTIAL_H

#include "gnnbench/check/property.h"
#include "gnnbench/check/validate.h"
#include "gnnbench/core/tensor.h"
#include "gnnbench/dglx/nn.h"
#include "gnnbench/pygx/nn.h"

namespace gnnbench {
namespace check {

/** Relative + absolute float comparison tolerance. */
struct DiffTol
{
    float rel = 5e-3f;
    float abs = 1e-5f;
};

/** Element-wise closeness: |a - b| <= abs + rel * max(1, |b|). */
Result compareTensors(const char *what, const core::Tensor &a,
                      const core::Tensor &b, DiffTol tol = {});

/**
 * The shared differential substrate: the case's graph symmetrized
 * (without self-loops) and materialized in both frameworks, plus a
 * seeded feature matrix and labels.
 */
struct DiffCase
{
    graph::CooGraph sym;
    dglx::Graph dgl;
    pygx::Data pyg;
    core::Tensor x;
    std::vector<int32_t> labels;
    int64_t featDim;
    int32_t numClasses;

    DiffCase(const GraphCase &c, uint64_t seed, int64_t feat_dim = 6,
             int32_t num_classes = 4);
};

/**
 * Forward agreement of one conv kind built with identical weights in
 * both frameworks (full-graph forward).  Handles the Gcn2 initial-
 * embedding requirement internally.
 */
Result diffConvForward(dglx::ConvKind kind, const GraphCase &c,
                       uint64_t seed, DiffTol tol = {});

/**
 * Full train-step agreement: a 2-layer GCN in each framework with
 * identical initial weights runs forward + backward + @p steps Adam
 * steps on the full graph; per-step losses, then final gradients and
 * parameters, must agree within tolerance.
 */
Result diffTrainSteps(const GraphCase &c, uint64_t seed,
                      int steps = 2, DiffTol tol = {});

/**
 * Sampled-path train-step agreement: the *same* random node subset
 * is materialized as a dglx InducedSample and a pygx EdgeBatch, and
 * one identically-initialized 2-layer GCN training step runs on each
 * (ClusterGCN/GraphSAINT's per-batch step).  Losses, gradients, and
 * updated parameters must agree.
 */
Result diffInducedStep(const GraphCase &c, uint64_t seed,
                       DiffTol tol = {});

/**
 * Distributional comparison of the two frameworks' neighbor
 * samplers: mean input-frontier size and mean sampled-edge count
 * over @p draws batches must agree within @p rel_tol relative error.
 */
Result diffNeighborSamplerStats(const GraphCase &c,
                                const std::vector<int> &fanouts,
                                uint64_t seed, int draws = 24,
                                double rel_tol = 0.25);

/** Same idea for the SAINT random-walk samplers: mean subgraph node
 *  and edge counts across draws. */
Result diffSaintRwStats(const GraphCase &c, int32_t num_roots,
                        int32_t walk_length, uint64_t seed,
                        int draws = 24, double rel_tol = 0.25);

/**
 * Exact structural agreement of the frameworks' induced-subgraph
 * extraction on one shared node subset: dglx's flat-scratch
 * extraction, pygx's edge_index extraction, and the reference
 * graph::inducedSubgraph must all describe the same subgraph.
 */
Result diffInducedExtraction(const GraphCase &c, uint64_t seed);

/**
 * Bit-exact agreement of the frameworks' neighborhood aggregation:
 * both now dispatch through the shared gnnbench::kernels layer, and
 * the pygx edge list is materialized in csc traversal order, so
 * dglx's fused gspmm and pygx's gather/scatter pipeline accumulate
 * every output element in the same order with the same arithmetic.
 * Sum, mean, and max must match to the bit (DiffTol{0, 0}); the
 * weighted fused paths must also match to the bit, while the
 * materialized multiply-then-scatter path is held to a tight float
 * tolerance (FMA contraction in the fused product is the only
 * permitted divergence).
 */
Result diffUnifiedAggregation(const GraphCase &c, uint64_t seed);

} // namespace check
} // namespace gnnbench

#endif // GNNBENCH_CHECK_DIFFERENTIAL_H
