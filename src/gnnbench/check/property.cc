#include "gnnbench/check/property.h"

#include <iostream>
#include <sstream>

#include "gnnbench/core/parallel.h"
#include "gnnbench/core/rng.h"

namespace gnnbench {
namespace check {

namespace {

NodeId
randomNode(core::Rng &rng, NodeId n)
{
    return static_cast<NodeId>(
        rng.uniformInt(static_cast<uint64_t>(n)));
}

void
addUniformEdges(graph::CooGraph &g, EdgeId m, core::Rng &rng)
{
    for (EdgeId e = 0; e < m; ++e) {
        g.src.push_back(randomNode(rng, g.numNodes));
        g.dst.push_back(randomNode(rng, g.numNodes));
    }
}

} // namespace

const char *
shapeName(GraphShape s)
{
    switch (s) {
    case GraphShape::Sparse: return "sparse";
    case GraphShape::Dense: return "dense";
    case GraphShape::Skewed: return "skewed";
    case GraphShape::Empty: return "empty";
    case GraphShape::SingleNode: return "single-node";
    case GraphShape::Star: return "star";
    case GraphShape::Path: return "path";
    case GraphShape::SelfLoops: return "self-loops";
    case GraphShape::DuplicateEdges: return "duplicate-edges";
    case GraphShape::IsolatedNodes: return "isolated-nodes";
    case GraphShape::Clustered: return "clustered";
    }
    return "?";
}

uint64_t
caseSeed(uint64_t base, int index)
{
    // SplitMix64-finalized so adjacent indices give decorrelated
    // generator streams.
    return core::parallel::chunkSeed(base, 0xC0DEC4E5ULL,
                                    static_cast<uint64_t>(index));
}

GraphCase
generateGraphCase(uint64_t seed)
{
    GraphCase c;
    c.seed = seed;
    core::Rng rng(seed);
    c.shape = static_cast<GraphShape>(rng.uniformInt(11));
    graph::CooGraph &g = c.coo;
    switch (c.shape) {
    case GraphShape::Sparse: {
        g.numNodes = 2 + static_cast<NodeId>(rng.uniformInt(63));
        addUniformEdges(g, static_cast<EdgeId>(rng.uniformInt(
                               static_cast<uint64_t>(2 * g.numNodes))),
                        rng);
        break;
    }
    case GraphShape::Dense: {
        g.numNodes = 2 + static_cast<NodeId>(rng.uniformInt(14));
        const auto n = static_cast<uint64_t>(g.numNodes);
        addUniformEdges(
            g, static_cast<EdgeId>(1 + rng.uniformInt(n * n)), rng);
        break;
    }
    case GraphShape::Skewed: {
        g.numNodes = 4 + static_cast<NodeId>(rng.uniformInt(60));
        const auto m =
            static_cast<EdgeId>(2 + rng.uniformInt(
                                    static_cast<uint64_t>(
                                        3 * g.numNodes)));
        for (EdgeId e = 0; e < m; ++e) {
            // Preferential attachment: half the time reuse an
            // endpoint of an earlier edge, skewing the degrees.
            NodeId u = randomNode(rng, g.numNodes);
            NodeId v = randomNode(rng, g.numNodes);
            if (!g.src.empty() && rng.uniformInt(2) == 0)
                u = g.src[rng.uniformInt(g.src.size())];
            if (!g.dst.empty() && rng.uniformInt(2) == 0)
                v = g.dst[rng.uniformInt(g.dst.size())];
            g.src.push_back(u);
            g.dst.push_back(v);
        }
        break;
    }
    case GraphShape::Empty: {
        g.numNodes = 1 + static_cast<NodeId>(rng.uniformInt(8));
        break;
    }
    case GraphShape::SingleNode: {
        g.numNodes = 1;
        if (rng.uniformInt(2) == 0) {
            g.src.push_back(0);
            g.dst.push_back(0);
        }
        break;
    }
    case GraphShape::Star: {
        g.numNodes = 2 + static_cast<NodeId>(rng.uniformInt(40));
        for (NodeId v = 1; v < g.numNodes; ++v) {
            if (rng.uniformInt(2) == 0) {
                g.src.push_back(0);
                g.dst.push_back(v);
            } else {
                g.src.push_back(v);
                g.dst.push_back(0);
            }
        }
        break;
    }
    case GraphShape::Path: {
        g.numNodes = 2 + static_cast<NodeId>(rng.uniformInt(40));
        for (NodeId v = 0; v + 1 < g.numNodes; ++v) {
            g.src.push_back(v);
            g.dst.push_back(v + 1);
        }
        break;
    }
    case GraphShape::SelfLoops: {
        g.numNodes = 2 + static_cast<NodeId>(rng.uniformInt(30));
        addUniformEdges(g, static_cast<EdgeId>(rng.uniformInt(
                               static_cast<uint64_t>(g.numNodes))),
                        rng);
        const auto loops = 1 + rng.uniformInt(
                                   static_cast<uint64_t>(g.numNodes));
        for (uint64_t i = 0; i < loops; ++i) {
            const NodeId v = randomNode(rng, g.numNodes);
            g.src.push_back(v);
            g.dst.push_back(v);
        }
        break;
    }
    case GraphShape::DuplicateEdges: {
        g.numNodes = 2 + static_cast<NodeId>(rng.uniformInt(30));
        addUniformEdges(g, static_cast<EdgeId>(1 + rng.uniformInt(
                               static_cast<uint64_t>(g.numNodes))),
                        rng);
        const auto dups =
            1 + rng.uniformInt(static_cast<uint64_t>(g.src.size()));
        for (uint64_t i = 0; i < dups; ++i) {
            const size_t e = rng.uniformInt(g.src.size());
            g.src.push_back(g.src[e]);
            g.dst.push_back(g.dst[e]);
        }
        break;
    }
    case GraphShape::IsolatedNodes: {
        g.numNodes = 4 + static_cast<NodeId>(rng.uniformInt(60));
        const NodeId active = std::max<NodeId>(1, g.numNodes / 2);
        const auto m = rng.uniformInt(
            static_cast<uint64_t>(2 * active));
        for (uint64_t e = 0; e < m; ++e) {
            g.src.push_back(randomNode(rng, active));
            g.dst.push_back(randomNode(rng, active));
        }
        break;
    }
    case GraphShape::Clustered: {
        // The shape a graph partitioner is built for: a few dense
        // clusters joined by a sparse cut.  Exercises the sharding
        // layer's halo machinery (every cut edge creates a halo
        // node) without degenerating into a uniform random graph.
        const auto k = 2 + rng.uniformInt(3); // clusters
        const auto per = 2 + rng.uniformInt(12);
        g.numNodes = static_cast<NodeId>(k * per);
        for (uint64_t c_i = 0; c_i < k; ++c_i) {
            const NodeId lo = static_cast<NodeId>(c_i * per);
            const auto m_in = per + rng.uniformInt(2 * per);
            for (uint64_t e = 0; e < m_in; ++e) {
                g.src.push_back(
                    lo + static_cast<NodeId>(rng.uniformInt(per)));
                g.dst.push_back(
                    lo + static_cast<NodeId>(rng.uniformInt(per)));
            }
        }
        const auto m_cut = rng.uniformInt(k + 1);
        for (uint64_t e = 0; e < m_cut; ++e) {
            g.src.push_back(randomNode(rng, g.numNodes));
            g.dst.push_back(randomNode(rng, g.numNodes));
        }
        break;
    }
    }
    return c;
}

std::vector<graph::CooGraph>
shrinkGraph(const graph::CooGraph &g)
{
    std::vector<graph::CooGraph> out;
    const size_t m = g.src.size();
    // Candidate 1/2: keep only the first / second half of the edges.
    if (m > 0) {
        for (int half = 0; half < 2; ++half) {
            graph::CooGraph s;
            s.numNodes = g.numNodes;
            const size_t b = half == 0 ? 0 : m / 2;
            const size_t e = half == 0 ? (m + 1) / 2 : m;
            s.src.assign(g.src.begin() + b, g.src.begin() + e);
            s.dst.assign(g.dst.begin() + b, g.dst.begin() + e);
            if (s.src.size() < m)
                out.push_back(std::move(s));
        }
        // Candidate 3: drop every other edge.
        graph::CooGraph s;
        s.numNodes = g.numNodes;
        for (size_t e = 0; e < m; e += 2) {
            s.src.push_back(g.src[e]);
            s.dst.push_back(g.dst[e]);
        }
        if (s.src.size() < m)
            out.push_back(std::move(s));
    }
    // Candidate 4: restrict to the first half of the nodes.
    if (g.numNodes > 1) {
        graph::CooGraph s;
        s.numNodes = (g.numNodes + 1) / 2;
        for (size_t e = 0; e < m; ++e)
            if (g.src[e] < s.numNodes && g.dst[e] < s.numNodes) {
                s.src.push_back(g.src[e]);
                s.dst.push_back(g.dst[e]);
            }
        out.push_back(std::move(s));
    }
    return out;
}

bool
checkProperty(const std::string &name, const Property &fn,
              const PropertyOptions &opts)
{
    std::ostream &os = opts.out ? *opts.out : std::cerr;
    for (int i = 0; i < opts.numCases; ++i) {
        const uint64_t seed = caseSeed(opts.baseSeed, i);
        GraphCase c = generateGraphCase(seed);
        ScopedContext ctx([&] {
            std::ostringstream oss;
            oss << "property '" << name << "' case #" << i
                << ", repro seed=" << seed;
            return oss.str();
        }());
        Result r = fn(c);
        if (r.ok)
            continue;

        // Greedy shrink: adopt any smaller candidate that still
        // fails, restart from it, stop when none fails.
        GraphCase shrunk = c;
        std::string message = r.message;
        int steps = 0;
        bool progressed = true;
        while (progressed && steps < opts.maxShrinkSteps) {
            progressed = false;
            for (graph::CooGraph &cand : shrinkGraph(shrunk.coo)) {
                GraphCase next = shrunk;
                next.coo = std::move(cand);
                Result rr = fn(next);
                if (!rr.ok) {
                    shrunk = std::move(next);
                    message = rr.message;
                    progressed = true;
                    ++steps;
                    break;
                }
            }
        }

        os << "[gnncheck] property '" << name << "' FAILED on case #"
           << i << " (shape=" << shapeName(c.shape) << ")\n"
           << "[gnncheck]   repro seed: " << seed
           << "  (generateGraphCase(" << seed << "), base seed "
           << opts.baseSeed << ")\n"
           << "[gnncheck]   original: nodes=" << c.coo.numNodes
           << " edges=" << c.coo.src.size()
           << "; shrunk: nodes=" << shrunk.coo.numNodes
           << " edges=" << shrunk.coo.src.size() << " (" << steps
           << " shrink steps)\n"
           << "[gnncheck]   violation: " << message << std::endl;
        return false;
    }
    return true;
}

} // namespace check
} // namespace gnnbench
