#include "gnnbench/check/statistical.h"

#include <cmath>
#include <sstream>

namespace gnnbench {
namespace check {

EstimatorStats
saintEstimatorStats(const std::vector<double> &value,
                    const NodeSetDraw &draw, int prob_draws,
                    int estimate_draws)
{
    EstimatorStats out;
    out.probDraws = prob_draws;
    out.estimateDraws = estimate_draws;
    const auto n = static_cast<double>(value.size());
    for (double v : value)
        out.fullMean += v;
    out.fullMean /= n;

    // Phase 1: empirical inclusion probabilities.  Nodes never seen
    // get a floor of half a count so the estimate stays finite; with
    // enough draws relative to the sampler's coverage this floor is
    // irrelevant.
    std::vector<double> counts(value.size(), 0.0);
    for (int t = 0; t < prob_draws; ++t)
        for (NodeId v : draw(t))
            counts[static_cast<size_t>(v)] += 1.0;
    std::vector<double> prob(value.size());
    for (size_t v = 0; v < prob.size(); ++v)
        prob[v] = std::max(counts[v], 0.5) /
                  static_cast<double>(prob_draws);

    // Phase 2: independent draws, Horvitz-Thompson estimates of
    // mean(value): (1/N) * sum_{v in S} value[v] / p(v).
    double sum = 0.0, sumsq = 0.0;
    for (int t = 0; t < estimate_draws; ++t) {
        double est = 0.0;
        for (NodeId v : draw(prob_draws + t))
            est += value[static_cast<size_t>(v)] /
                   prob[static_cast<size_t>(v)];
        est /= n;
        sum += est;
        sumsq += est * est;
    }
    const auto d = static_cast<double>(estimate_draws);
    out.htMean = sum / d;
    const double var =
        std::max(0.0, sumsq / d - out.htMean * out.htMean);
    out.stdError = std::sqrt(var / d);
    out.zScore = out.stdError > 1e-12
                     ? (out.htMean - out.fullMean) / out.stdError
                     : 0.0;
    return out;
}

Result
checkSaintUnbiased(const EstimatorStats &stats, double z_limit)
{
    if (std::fabs(stats.zScore) <= z_limit)
        return Result::pass();
    std::ostringstream oss;
    oss << "saint estimator biased: full-batch mean "
        << stats.fullMean << ", HT estimate " << stats.htMean
        << " +- " << stats.stdError << " (z = " << stats.zScore
        << " over " << stats.estimateDraws << " draws, limit "
        << z_limit << ")";
    return Result::fail(oss.str());
}

} // namespace check
} // namespace gnnbench
