#include "gnnbench/check/validate.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <vector>

#include "gnnbench/core/common.h"

namespace gnnbench {
namespace check {

namespace {

/** -1: consult env/compile default; 0/1: setEnabled() override. */
std::atomic<int> g_override{-1};

bool
envDefault()
{
    const char *v = std::getenv("GNNBENCH_VALIDATE");
    if (v == nullptr) {
#ifdef GNNBENCH_VALIDATE_DEFAULT
        return true;
#else
        return false;
#endif
    }
    return !(std::strcmp(v, "") == 0 || std::strcmp(v, "0") == 0 ||
             std::strcmp(v, "off") == 0 ||
             std::strcmp(v, "false") == 0);
}

thread_local std::vector<std::string> t_context;

} // namespace

bool
enabled()
{
    const int o = g_override.load(std::memory_order_relaxed);
    if (o >= 0)
        return o != 0;
    static const bool from_env = envDefault();
    return from_env;
}

void
setEnabled(bool on)
{
    g_override.store(on ? 1 : 0, std::memory_order_relaxed);
}

ScopedContext::ScopedContext(std::string text)
{
    t_context.push_back(std::move(text));
}

ScopedContext::~ScopedContext() { t_context.pop_back(); }

std::string
contextString()
{
    std::string out;
    for (const auto &line : t_context) {
        if (!out.empty())
            out += "; ";
        out += line;
    }
    return out;
}

void
require(const Result &r)
{
    if (r.ok)
        return;
    std::string msg = "validation failed: " + r.message;
    const std::string ctx = contextString();
    if (!ctx.empty())
        msg += " [" + ctx + "]";
    GNNBENCH_CHECK(false, msg);
}

Result
checkCoo(const graph::CooGraph &g)
{
    if (g.numNodes < 0)
        return Result::fail("coo: negative numNodes");
    if (g.src.size() != g.dst.size())
        return Result::fail("coo: src/dst length mismatch");
    for (size_t e = 0; e < g.src.size(); ++e) {
        if (g.src[e] < 0 || g.src[e] >= g.numNodes ||
            g.dst[e] < 0 || g.dst[e] >= g.numNodes) {
            std::ostringstream oss;
            oss << "coo: edge " << e << " = (" << g.src[e] << " -> "
                << g.dst[e] << ") out of range [0, " << g.numNodes
                << ")";
            return Result::fail(oss.str());
        }
    }
    return Result::pass();
}

Result
checkCsr(const graph::CsrGraph &g, const CsrOptions &opts)
{
    if (g.numRows < 0 || g.numCols < 0)
        return Result::fail("csr: negative dimension");
    if (opts.requireSquare && g.numRows != g.numCols)
        return Result::fail("csr: expected square adjacency");
    if (g.indptr.size() != static_cast<size_t>(g.numRows) + 1)
        return Result::fail("csr: indptr size != numRows + 1");
    if (g.indptr.front() != 0)
        return Result::fail("csr: indptr[0] != 0");
    for (NodeId r = 0; r < g.numRows; ++r)
        if (g.indptr[r] > g.indptr[r + 1]) {
            std::ostringstream oss;
            oss << "csr: indptr not monotone at row " << r;
            return Result::fail(oss.str());
        }
    if (g.indptr.back() != static_cast<EdgeId>(g.indices.size()))
        return Result::fail(
            "csr: degree sum != nnz (indptr.back() != indices.size())");
    for (NodeId r = 0; r < g.numRows; ++r) {
        for (EdgeId e = g.indptr[r]; e < g.indptr[r + 1]; ++e) {
            const NodeId c = g.indices[static_cast<size_t>(e)];
            if (c < 0 || c >= g.numCols) {
                std::ostringstream oss;
                oss << "csr: row " << r << " has out-of-range column "
                    << c << " (numCols=" << g.numCols << ")";
                return Result::fail(oss.str());
            }
            if (e > g.indptr[r]) {
                const NodeId prev =
                    g.indices[static_cast<size_t>(e) - 1];
                if (opts.requireSortedRows && prev > c) {
                    std::ostringstream oss;
                    oss << "csr: row " << r << " not sorted";
                    return Result::fail(oss.str());
                }
                if (opts.requireUniqueCols &&
                    opts.requireSortedRows && prev == c) {
                    std::ostringstream oss;
                    oss << "csr: row " << r << " duplicates column "
                        << c;
                    return Result::fail(oss.str());
                }
            }
        }
        if (opts.requireUniqueCols && !opts.requireSortedRows) {
            // Unsorted rows: O(deg^2) scan, fine for the row sizes
            // validation runs on.
            for (EdgeId a = g.indptr[r]; a < g.indptr[r + 1]; ++a)
                for (EdgeId b = a + 1; b < g.indptr[r + 1]; ++b)
                    if (g.indices[static_cast<size_t>(a)] ==
                        g.indices[static_cast<size_t>(b)]) {
                        std::ostringstream oss;
                        oss << "csr: row " << r
                            << " duplicates column "
                            << g.indices[static_cast<size_t>(a)];
                        return Result::fail(oss.str());
                    }
        }
    }
    return Result::pass();
}

Result
checkPartition(const graph::CsrGraph &g,
               const graph::PartitionResult &p)
{
    if (p.numParts <= 0)
        return Result::fail("partition: numParts <= 0");
    if (p.assignment.size() != static_cast<size_t>(g.numRows))
        return Result::fail(
            "partition: assignment does not cover every node");
    std::vector<NodeId> sizes(static_cast<size_t>(p.numParts), 0);
    for (size_t v = 0; v < p.assignment.size(); ++v) {
        const int32_t a = p.assignment[v];
        if (a < 0 || a >= p.numParts) {
            std::ostringstream oss;
            oss << "partition: node " << v << " assigned to part "
                << a << " outside [0, " << p.numParts << ")";
            return Result::fail(oss.str());
        }
        ++sizes[static_cast<size_t>(a)];
    }
    NodeId max_size = 0;
    for (NodeId s : sizes)
        max_size = std::max(max_size, s);
    if (max_size != p.maxPartSize) {
        std::ostringstream oss;
        oss << "partition: maxPartSize " << p.maxPartSize
            << " != recount " << max_size;
        return Result::fail(oss.str());
    }
    // Independent recount of the directed edge cut (do not reuse
    // graph::countCutEdges; a bug there must not self-certify).
    EdgeId cut = 0;
    for (NodeId u = 0; u < g.numRows; ++u) {
        const int32_t pu = p.assignment[static_cast<size_t>(u)];
        for (EdgeId e = g.indptr[u]; e < g.indptr[u + 1]; ++e) {
            const NodeId v = g.indices[static_cast<size_t>(e)];
            if (v >= 0 && v < g.numRows &&
                p.assignment[static_cast<size_t>(v)] != pu)
                ++cut;
        }
    }
    if (cut != p.cutEdges) {
        std::ostringstream oss;
        oss << "partition: cutEdges " << p.cutEdges << " != recount "
            << cut;
        return Result::fail(oss.str());
    }
    return Result::pass();
}

} // namespace check
} // namespace gnnbench
