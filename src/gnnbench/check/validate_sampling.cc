#include "gnnbench/check/validate_sampling.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "gnnbench/graph/convert.h"

namespace gnnbench {
namespace check {

namespace {

Result
checkUniqueInRange(const std::vector<NodeId> &ids, NodeId num_nodes,
                   const char *what)
{
    std::unordered_set<NodeId> seen;
    seen.reserve(ids.size() * 2);
    for (NodeId v : ids) {
        if (v < 0 || v >= num_nodes) {
            std::ostringstream oss;
            oss << what << ": node id " << v << " outside [0, "
                << num_nodes << ")";
            return Result::fail(oss.str());
        }
        if (!seen.insert(v).second) {
            std::ostringstream oss;
            oss << what << ": node id " << v
                << " mapped twice (bijectivity broken)";
            return Result::fail(oss.str());
        }
    }
    return Result::pass();
}

/** Multiplicity of value @p v in row @p r of @p g. */
EdgeId
rowCount(const graph::CsrGraph &g, NodeId r, NodeId v)
{
    EdgeId n = 0;
    for (EdgeId e = g.indptr[r]; e < g.indptr[r + 1]; ++e)
        if (g.indices[static_cast<size_t>(e)] == v)
            ++n;
    return n;
}

/**
 * Compare sampled edges grouped by destination against the global
 * adjacency: per (dst, src) pair the sampled multiplicity must not
 * exceed the global multiplicity (samplers draw adjacency positions
 * without replacement).
 */
Result
checkSampledEdges(const std::vector<std::vector<NodeId>> &per_dst,
                  const std::vector<NodeId> &dst_nodes,
                  const graph::CsrGraph &global_csc, int fanout,
                  const char *what)
{
    for (size_t d = 0; d < per_dst.size(); ++d) {
        const NodeId gd = dst_nodes[d];
        const auto &srcs = per_dst[d];
        const EdgeId global_deg =
            global_csc.indptr[gd + 1] - global_csc.indptr[gd];
        if (fanout > 0 &&
            srcs.size() > static_cast<size_t>(fanout)) {
            std::ostringstream oss;
            oss << what << ": dst " << gd << " kept " << srcs.size()
                << " edges, fanout bound " << fanout;
            return Result::fail(oss.str());
        }
        if (srcs.size() > static_cast<size_t>(global_deg)) {
            std::ostringstream oss;
            oss << what << ": dst " << gd << " kept " << srcs.size()
                << " edges but has global in-degree " << global_deg;
            return Result::fail(oss.str());
        }
        std::unordered_map<NodeId, EdgeId> mult;
        for (NodeId u : srcs)
            ++mult[u];
        for (const auto &[u, n] : mult) {
            if (n > rowCount(global_csc, gd, u)) {
                std::ostringstream oss;
                oss << what << ": sampled edge " << u << " -> " << gd
                    << " with multiplicity " << n
                    << " exceeds the global graph";
                return Result::fail(oss.str());
            }
        }
    }
    return Result::pass();
}

/** Per-row sorted-index comparison of two adjacencies. */
Result
compareAdjacency(const graph::CsrGraph &got,
                 const graph::CsrGraph &want, const char *what)
{
    if (got.numRows != want.numRows || got.numCols != want.numCols) {
        std::ostringstream oss;
        oss << what << ": induced adjacency is " << got.numRows << "x"
            << got.numCols << ", reference " << want.numRows << "x"
            << want.numCols;
        return Result::fail(oss.str());
    }
    for (NodeId r = 0; r < got.numRows; ++r) {
        std::vector<NodeId> a(got.indices.begin() + got.indptr[r],
                              got.indices.begin() + got.indptr[r + 1]);
        std::vector<NodeId> b(
            want.indices.begin() + want.indptr[r],
            want.indices.begin() + want.indptr[r + 1]);
        std::sort(a.begin(), a.end());
        std::sort(b.begin(), b.end());
        if (a != b) {
            std::ostringstream oss;
            oss << what << ": induced row " << r
                << " disagrees with the reference induced subgraph ("
                << a.size() << " vs " << b.size() << " edges)";
            return Result::fail(oss.str());
        }
    }
    return Result::pass();
}

} // namespace

Result
checkBlock(const sampling::Block &blk,
           const graph::CsrGraph &global_csc, int fanout)
{
    if (blk.dstNodes.size() > blk.srcNodes.size())
        return Result::fail("block: more dst than src nodes");
    for (size_t i = 0; i < blk.dstNodes.size(); ++i)
        if (blk.srcNodes[i] != blk.dstNodes[i])
            return Result::fail(
                "block: dst nodes are not a prefix of src nodes");
    if (Result r = checkUniqueInRange(blk.srcNodes,
                                      global_csc.numRows, "block");
        !r)
        return r;
    if (blk.csc.numRows != static_cast<NodeId>(blk.dstNodes.size()) ||
        blk.csc.numCols != static_cast<NodeId>(blk.srcNodes.size()))
        return Result::fail("block: csc shape mismatch");
    if (Result r = checkCsr(blk.csc); !r)
        return r;
    std::vector<std::vector<NodeId>> per_dst(blk.dstNodes.size());
    for (NodeId d = 0; d < blk.csc.numRows; ++d)
        for (EdgeId e = blk.csc.indptr[d]; e < blk.csc.indptr[d + 1];
             ++e)
            per_dst[static_cast<size_t>(d)].push_back(
                blk.srcNodes[static_cast<size_t>(
                    blk.csc.indices[static_cast<size_t>(e)])]);
    return checkSampledEdges(per_dst, blk.dstNodes, global_csc,
                             fanout, "block");
}

Result
checkNeighborSample(const sampling::NeighborSample &smp,
                    const graph::CsrGraph &global_csc,
                    const std::vector<int> &fanouts)
{
    if (smp.blocks.size() != fanouts.size())
        return Result::fail(
            "neighbor sample: one block per fanout required");
    for (size_t l = 0; l < smp.blocks.size(); ++l)
        if (Result r =
                checkBlock(smp.blocks[l], global_csc, fanouts[l]);
            !r)
            return r;
    for (size_t l = 0; l + 1 < smp.blocks.size(); ++l)
        if (smp.blocks[l].dstNodes != smp.blocks[l + 1].srcNodes) {
            std::ostringstream oss;
            oss << "neighbor sample: layer wiring broken at layer "
                << l;
            return Result::fail(oss.str());
        }
    if (smp.blocks.back().dstNodes != smp.seeds)
        return Result::fail(
            "neighbor sample: last block's dst nodes != seeds");
    return Result::pass();
}

Result
checkInducedSample(const sampling::InducedSample &smp,
                   const graph::CsrGraph &global_csr)
{
    if (Result r = checkUniqueInRange(smp.nodes, global_csr.numRows,
                                      "induced sample");
        !r)
        return r;
    if (smp.adj.numRows != static_cast<NodeId>(smp.nodes.size()) ||
        smp.adj.numCols != smp.adj.numRows)
        return Result::fail(
            "induced sample: adjacency not square over the nodes");
    if (Result r = checkCsr(smp.adj); !r)
        return r;
    return compareAdjacency(smp.adj,
                            graph::inducedSubgraph(global_csr,
                                                   smp.nodes),
                            "induced sample");
}

Result
checkEdgeBatch(const pygx::EdgeBatch &batch,
               const graph::CsrGraph &global_csc)
{
    if (Result r = checkUniqueInRange(batch.nodes,
                                      global_csc.numRows,
                                      "edge batch");
        !r)
        return r;
    if (batch.src.size() != batch.dst.size())
        return Result::fail("edge batch: src/dst length mismatch");
    const auto k = static_cast<NodeId>(batch.nodes.size());
    // Regroup the edge list into a local CSC (rows = dst) so closure
    // and completeness reduce to one adjacency comparison.
    graph::CsrGraph local;
    local.numRows = k;
    local.numCols = k;
    local.indptr.assign(static_cast<size_t>(k) + 1, 0);
    for (size_t e = 0; e < batch.dst.size(); ++e) {
        const NodeId s = batch.src[e];
        const NodeId d = batch.dst[e];
        if (s < 0 || s >= k || d < 0 || d >= k) {
            std::ostringstream oss;
            oss << "edge batch: edge " << e << " = (" << s << " -> "
                << d << ") outside the local id range [0, " << k
                << ")";
            return Result::fail(oss.str());
        }
        ++local.indptr[static_cast<size_t>(d) + 1];
    }
    for (NodeId d = 0; d < k; ++d)
        local.indptr[static_cast<size_t>(d) + 1] +=
            local.indptr[static_cast<size_t>(d)];
    local.indices.resize(batch.src.size());
    std::vector<EdgeId> cursor(local.indptr.begin(),
                               local.indptr.end() - 1);
    for (size_t e = 0; e < batch.dst.size(); ++e)
        local.indices[static_cast<size_t>(
            cursor[static_cast<size_t>(batch.dst[e])]++)] =
            batch.src[e];
    return compareAdjacency(local,
                            graph::inducedSubgraph(global_csc,
                                                   batch.nodes),
                            "edge batch");
}

Result
checkLayerBatch(const pygx::LayerBatch &layer,
                const graph::CsrGraph &global_csc, int fanout)
{
    if (layer.dstNodes.size() > layer.srcNodes.size())
        return Result::fail("layer batch: more dst than src nodes");
    for (size_t i = 0; i < layer.dstNodes.size(); ++i)
        if (layer.srcNodes[i] != layer.dstNodes[i])
            return Result::fail(
                "layer batch: dst nodes are not a prefix of src");
    if (Result r = checkUniqueInRange(
            layer.srcNodes, global_csc.numRows, "layer batch");
        !r)
        return r;
    if (layer.eSrc.size() != layer.eDst.size())
        return Result::fail("layer batch: eSrc/eDst length mismatch");
    std::vector<std::vector<NodeId>> per_dst(layer.dstNodes.size());
    for (size_t e = 0; e < layer.eSrc.size(); ++e) {
        const NodeId s = layer.eSrc[e];
        const NodeId d = layer.eDst[e];
        if (s < 0 ||
            s >= static_cast<NodeId>(layer.srcNodes.size()) ||
            d < 0 || d >= static_cast<NodeId>(layer.dstNodes.size()))
            return Result::fail(
                "layer batch: edge endpoint outside local ranges");
        per_dst[static_cast<size_t>(d)].push_back(
            layer.srcNodes[static_cast<size_t>(s)]);
    }
    return checkSampledEdges(per_dst, layer.dstNodes, global_csc,
                             fanout, "layer batch");
}

Result
checkNeighborBatch(const pygx::NeighborBatch &batch,
                   const graph::CsrGraph &global_csc,
                   const std::vector<int> &fanouts)
{
    if (batch.layers.size() != fanouts.size())
        return Result::fail(
            "neighbor batch: one layer per fanout required");
    for (size_t l = 0; l < batch.layers.size(); ++l)
        if (Result r = checkLayerBatch(batch.layers[l], global_csc,
                                       fanouts[l]);
            !r)
            return r;
    for (size_t l = 0; l + 1 < batch.layers.size(); ++l)
        if (batch.layers[l].dstNodes !=
            batch.layers[l + 1].srcNodes) {
            std::ostringstream oss;
            oss << "neighbor batch: layer wiring broken at layer "
                << l;
            return Result::fail(oss.str());
        }
    if (batch.layers.back().dstNodes != batch.seeds)
        return Result::fail(
            "neighbor batch: last layer's dst nodes != seeds");
    return Result::pass();
}

} // namespace check
} // namespace gnnbench
