#include "gnnbench/check/differential.h"

#include <cmath>
#include <sstream>

#include "gnnbench/check/validate_sampling.h"
#include "gnnbench/core/optim.h"
#include "gnnbench/dglx/kernels.h"
#include "gnnbench/dglx/sampler.h"
#include "gnnbench/graph/convert.h"
#include "gnnbench/pygx/sampler.h"
#include "gnnbench/pygx/scatter.h"

namespace gnnbench {
namespace check {

namespace {

namespace ag = core::ag;
using core::Tensor;

/** Random distinct seed nodes (at most @p want) for sampler draws. */
std::vector<NodeId>
randomSeeds(core::Rng &rng, NodeId n, size_t want)
{
    std::vector<NodeId> out;
    for (size_t i = 0; i < want * 3 && out.size() < want; ++i) {
        const auto v = static_cast<NodeId>(
            rng.uniformInt(static_cast<uint64_t>(n)));
        bool dup = false;
        for (NodeId u : out)
            dup = dup || u == v;
        if (!dup)
            out.push_back(v);
    }
    return out;
}

Result
closeScalar(const char *what, double a, double b, double rel,
            double abs_slack)
{
    if (std::fabs(a - b) <=
        abs_slack + rel * std::max(1.0, std::fabs(b)))
        return Result::pass();
    std::ostringstream oss;
    oss << what << ": dglx " << a << " vs pygx " << b
        << " beyond tolerance (rel " << rel << ")";
    return Result::fail(oss.str());
}

} // namespace

Result
compareTensors(const char *what, const Tensor &a, const Tensor &b,
               DiffTol tol)
{
    if (!a.sameShape(b)) {
        std::ostringstream oss;
        oss << what << ": shape mismatch";
        return Result::fail(oss.str());
    }
    for (int64_t i = 0; i < a.numel(); ++i) {
        const float av = a.data()[i];
        const float bv = b.data()[i];
        const float bound =
            tol.abs + tol.rel * std::max(1.0f, std::fabs(bv));
        if (std::fabs(av - bv) > bound || std::isnan(av) ||
            std::isnan(bv)) {
            std::ostringstream oss;
            oss << what << ": element " << i << " differs (dglx "
                << av << ", pygx " << bv << ", bound " << bound
                << ")";
            return Result::fail(oss.str());
        }
    }
    return Result::pass();
}

DiffCase::DiffCase(const GraphCase &c, uint64_t seed,
                   int64_t feat_dim, int32_t num_classes)
    : sym(graph::symmetrize(c.coo, false)), dgl(sym), pyg(sym),
      x([&] {
          core::Rng rng(seed ^ 0xFEA7ULL);
          return Tensor::randn(sym.numNodes, feat_dim, rng);
      }()),
      featDim(feat_dim), numClasses(num_classes)
{
    labels.resize(static_cast<size_t>(sym.numNodes));
    for (NodeId v = 0; v < sym.numNodes; ++v)
        labels[static_cast<size_t>(v)] = v % num_classes;
}

Result
diffConvForward(dglx::ConvKind kind, const GraphCase &c,
                uint64_t seed, DiffTol tol)
{
    DiffCase d(c, seed);
    const int64_t out_dim = 5;
    core::Rng wrng_d(seed ^ 0x11ULL), wrng_p(seed ^ 0x11ULL);
    auto dconv =
        dglx::makeConv(kind, d.featDim, out_dim, wrng_d, false);
    auto pconv = pygx::makeConv(static_cast<pygx::ConvKind>(kind),
                                d.featDim, out_dim, wrng_p, false);

    Tensor in = d.x.clone();
    if (kind == dglx::ConvKind::Gcn2) {
        core::Rng prng(seed ^ 0x22ULL);
        in = core::ops::matmul(
            d.x, Tensor::glorot(d.featDim, out_dim, prng));
        static_cast<dglx::Gcn2Conv *>(dconv.get())
            ->setInitial(ag::constant(in.clone()));
        static_cast<pygx::Gcn2Conv *>(pconv.get())
            ->setInitial(ag::constant(in.clone()));
    }

    dglx::KernelCtx dctx;
    pygx::KernelCtx pctx;
    ag::Var dout =
        dconv->forward(d.dgl, ag::constant(in.clone()), dctx);
    ag::Var pout =
        pconv->forward(d.pyg, ag::constant(in.clone()), pctx);
    std::string what =
        std::string("forward[") + dglx::convKindName(kind) + "]";
    return compareTensors(what.c_str(), dout->value, pout->value,
                          tol);
}

Result
diffTrainSteps(const GraphCase &c, uint64_t seed, int steps,
               DiffTol tol)
{
    DiffCase d(c, seed);
    const int64_t hidden = 7;
    core::Rng wrng_d(seed ^ 0x33ULL), wrng_p(seed ^ 0x33ULL);
    dglx::GcnConv d1(d.featDim, hidden, wrng_d);
    dglx::GcnConv d2(hidden, d.numClasses, wrng_d);
    pygx::GcnConv p1(d.featDim, hidden, wrng_p);
    pygx::GcnConv p2(hidden, d.numClasses, wrng_p);

    auto dparams = d1.params();
    {
        auto tail = d2.params();
        dparams.insert(dparams.end(), tail.begin(), tail.end());
    }
    auto pparams = p1.params();
    {
        auto tail = p2.params();
        pparams.insert(pparams.end(), tail.begin(), tail.end());
    }
    core::Adam dopt(dparams, 0.01f), popt(pparams, 0.01f);
    dglx::KernelCtx dctx;
    pygx::KernelCtx pctx;

    for (int s = 0; s < steps; ++s) {
        ag::Var dout = d2.forward(
            d.dgl,
            ag::relu(d1.forward(
                d.dgl, ag::constant(d.x.clone()), dctx)),
            dctx);
        ag::Var dloss =
            ag::nllLoss(ag::logSoftmax(dout), d.labels, {});
        dopt.zeroGrad();
        ag::backward(dloss);

        ag::Var pout = p2.forward(
            d.pyg,
            ag::relu(p1.forward(
                d.pyg, ag::constant(d.x.clone()), pctx)),
            pctx);
        ag::Var ploss =
            ag::nllLoss(ag::logSoftmax(pout), d.labels, {});
        popt.zeroGrad();
        ag::backward(ploss);

        if (Result r = closeScalar("train-step loss",
                                   dloss->value(0, 0),
                                   ploss->value(0, 0), tol.rel,
                                   tol.abs);
            !r)
            return r;
        for (size_t i = 0; i < dparams.size(); ++i)
            if (Result r = compareTensors("train-step gradient",
                                          dparams[i]->grad,
                                          pparams[i]->grad, tol);
                !r)
                return r;
        dopt.step();
        popt.step();
    }
    for (size_t i = 0; i < dparams.size(); ++i)
        if (Result r = compareTensors("post-step parameter",
                                      dparams[i]->value,
                                      pparams[i]->value, tol);
            !r)
            return r;
    return Result::pass();
}

Result
diffInducedStep(const GraphCase &c, uint64_t seed, DiffTol tol)
{
    DiffCase d(c, seed);
    const NodeId n = d.sym.numNodes;
    core::Rng rng(seed ^ 0x44ULL);
    const size_t want = 1 + rng.uniformInt(
                                static_cast<uint64_t>(n));
    std::vector<NodeId> nodes = randomSeeds(rng, n, want);

    // The same node subset materialized both ways.  The symmetrized
    // graph makes csr == csc up to row-internal order, so the two
    // subgraphs describe the same adjacency.
    std::vector<NodeId> scratch(static_cast<size_t>(n), -1);
    sampling::InducedSample smp = dglx::ClusterSampler::extractInduced(
        d.dgl.csr(), nodes, scratch);
    pygx::EdgeBatch batch;
    batch.nodes = nodes;
    {
        graph::CsrGraph ref = graph::inducedSubgraph(
            graph::cooToCsc(d.sym), nodes);
        for (NodeId u = 0; u < ref.numRows; ++u)
            for (EdgeId e = ref.indptr[u]; e < ref.indptr[u + 1];
                 ++e) {
                batch.src.push_back(
                    ref.indices[static_cast<size_t>(e)]);
                batch.dst.push_back(u);
            }
    }

    // Identical supervision: every subgraph node carries loss.
    std::vector<int32_t> labels(nodes.size());
    std::vector<NodeId> loss_rows(nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i) {
        labels[i] = d.labels[static_cast<size_t>(nodes[i])];
        loss_rows[i] = static_cast<NodeId>(i);
    }
    Tensor xb(static_cast<int64_t>(nodes.size()), d.featDim);
    for (size_t i = 0; i < nodes.size(); ++i)
        for (int64_t f = 0; f < d.featDim; ++f)
            xb(static_cast<int64_t>(i), f) = d.x(nodes[i], f);

    const int64_t hidden = 6;
    core::Rng wrng_d(seed ^ 0x55ULL), wrng_p(seed ^ 0x55ULL);
    dglx::GcnConv d1(d.featDim, hidden, wrng_d);
    dglx::GcnConv d2(hidden, d.numClasses, wrng_d);
    pygx::GcnConv p1(d.featDim, hidden, wrng_p);
    pygx::GcnConv p2(hidden, d.numClasses, wrng_p);
    dglx::KernelCtx dctx;
    pygx::KernelCtx pctx;

    const std::vector<float> norm = dglx::computeGcnNorm(smp.adj);
    const std::vector<float> self = dglx::computeSelfScale(smp.adj);
    ag::Var dh = d1.forwardInduced(smp.adj, norm, self,
                                   ag::constant(xb.clone()), dctx);
    ag::Var dout =
        d2.forwardInduced(smp.adj, norm, self, ag::relu(dh), dctx);
    ag::Var dloss =
        ag::nllLoss(ag::logSoftmax(dout), labels, loss_rows);
    ag::backward(dloss);

    ag::Var ph =
        p1.forwardBatch(batch, ag::constant(xb.clone()), pctx);
    ag::Var pout = p2.forwardBatch(batch, ag::relu(ph), pctx);
    ag::Var ploss =
        ag::nllLoss(ag::logSoftmax(pout), labels, loss_rows);
    ag::backward(ploss);

    if (Result r =
            compareTensors("induced-step output", dout->value,
                           pout->value, tol);
        !r)
        return r;
    if (Result r = closeScalar("induced-step loss",
                               dloss->value(0, 0),
                               ploss->value(0, 0), tol.rel, tol.abs);
        !r)
        return r;
    auto dp = d1.params(), pp = p1.params();
    for (size_t i = 0; i < dp.size(); ++i)
        if (Result r = compareTensors("induced-step gradient",
                                      dp[i]->grad, pp[i]->grad, tol);
            !r)
            return r;
    return Result::pass();
}

Result
diffNeighborSamplerStats(const GraphCase &c,
                         const std::vector<int> &fanouts,
                         uint64_t seed, int draws, double rel_tol)
{
    DiffCase d(c, seed);
    const NodeId n = d.sym.numNodes;
    dglx::NeighborSampler ds(d.dgl, fanouts,
                             core::Rng(seed ^ 0x66ULL));
    pygx::NeighborSampler ps(d.pyg, fanouts,
                             core::Rng(seed ^ 0x77ULL), nullptr);
    core::Rng srng(seed ^ 0x88ULL);
    const size_t top = fanouts.size() - 1;
    double dfrontier = 0, pfrontier = 0;
    std::vector<double> dedges(fanouts.size(), 0);
    std::vector<double> pedges(fanouts.size(), 0);
    for (int t = 0; t < draws; ++t) {
        std::vector<NodeId> seeds = randomSeeds(
            srng, n, 1 + srng.uniformInt(4));
        sampling::NeighborSample dsmp = ds.sample(seeds);
        pygx::NeighborBatch psmp = ps.sample(seeds);
        for (size_t l = 0; l < fanouts.size(); ++l) {
            const auto de = static_cast<int64_t>(
                dsmp.blocks[l].csc.indices.size());
            const auto pe = static_cast<int64_t>(
                psmp.layers[l].eSrc.size());
            // Only the seed-side layer samples from an identical
            // frontier in both frameworks; there, edges kept per
            // destination are min(degree, fanout) — deterministic —
            // so the counts must agree exactly.  Deeper frontiers
            // depend on each framework's own RNG stream and agree
            // only distributionally.
            if (l == top && de != pe) {
                std::ostringstream oss;
                oss << "neighbor samplers: seed layer edge counts"
                    << " differ (dglx " << de << ", pygx " << pe
                    << ")";
                return Result::fail(oss.str());
            }
            dedges[l] += static_cast<double>(de);
            pedges[l] += static_cast<double>(pe);
        }
        dfrontier +=
            static_cast<double>(dsmp.inputNodes().size());
        pfrontier +=
            static_cast<double>(psmp.inputNodes().size());
    }
    for (size_t l = 0; l < top; ++l) {
        std::ostringstream name;
        name << "neighbor samplers: layer " << l
             << " mean edge count";
        if (Result r = closeScalar(name.str().c_str(),
                                   dedges[l] / draws,
                                   pedges[l] / draws, rel_tol, 4.0);
            !r)
            return r;
    }
    return closeScalar("neighbor samplers: mean frontier size",
                       dfrontier / draws, pfrontier / draws, rel_tol,
                       2.0);
}

Result
diffSaintRwStats(const GraphCase &c, int32_t num_roots,
                 int32_t walk_length, uint64_t seed, int draws,
                 double rel_tol)
{
    DiffCase d(c, seed);
    const auto roots = std::min<int32_t>(
        num_roots, std::max<int32_t>(1, d.sym.numNodes / 2));
    dglx::SaintRwSampler ds(d.dgl, roots, walk_length,
                            core::Rng(seed ^ 0x99ULL));
    pygx::SaintRwSampler ps(d.pyg, roots, walk_length,
                            core::Rng(seed ^ 0xAAULL), nullptr);
    double dnodes = 0, pnodes = 0, dedges = 0, pedges = 0;
    for (int t = 0; t < draws; ++t) {
        sampling::InducedSample dsmp = ds.sample();
        pygx::EdgeBatch psmp = ps.sample();
        dnodes += static_cast<double>(dsmp.nodes.size());
        pnodes += static_cast<double>(psmp.nodes.size());
        dedges += static_cast<double>(dsmp.adj.indices.size());
        pedges += static_cast<double>(psmp.src.size());
    }
    if (Result r = closeScalar("saint-rw samplers: mean node count",
                               dnodes / draws, pnodes / draws,
                               rel_tol, 2.0);
        !r)
        return r;
    return closeScalar("saint-rw samplers: mean edge count",
                       dedges / draws, pedges / draws, rel_tol, 4.0);
}

Result
diffInducedExtraction(const GraphCase &c, uint64_t seed)
{
    DiffCase d(c, seed);
    const NodeId n = d.sym.numNodes;
    core::Rng rng(seed ^ 0xBBULL);
    std::vector<NodeId> nodes = randomSeeds(
        rng, n, 1 + rng.uniformInt(static_cast<uint64_t>(n)));
    std::vector<NodeId> scratch(static_cast<size_t>(n), -1);
    sampling::InducedSample smp =
        dglx::ClusterSampler::extractInduced(d.dgl.csr(), nodes,
                                             scratch);
    // checkInducedSample compares against graph::inducedSubgraph, so
    // this certifies the fast flat-scratch path against the
    // reference; the pygx extraction path is certified by
    // checkEdgeBatch on real sampler outputs.
    return checkInducedSample(smp, d.dgl.csr());
}

Result
diffUnifiedAggregation(const GraphCase &c, uint64_t seed)
{
    const graph::CsrGraph csc = graph::cooToCsc(c.coo);
    const NodeId n = csc.numRows;
    const int64_t f = 11;
    core::Rng rng(seed ^ 0xA66ULL);
    Tensor x = Tensor::randn(n, f, rng);

    // Materialize the edge list in csc traversal order so the pygx
    // scatter pipeline visits each destination's in-edges in exactly
    // the order the fused dglx kernel reduces them.
    const size_t m = static_cast<size_t>(csc.numEdges());
    std::vector<NodeId> esrc, edst;
    esrc.reserve(m);
    edst.reserve(m);
    for (NodeId d = 0; d < csc.numRows; ++d)
        for (EdgeId e = csc.indptr[d]; e < csc.indptr[d + 1]; ++e) {
            esrc.push_back(csc.indices[e]);
            edst.push_back(d);
        }

    dglx::KernelCtx dctx;
    pygx::KernelCtx pctx;
    const DiffTol bitExact{0.0f, 0.0f};

    const Tensor msgs = pygx::gather(x, esrc, pctx);
    if (Result r = compareTensors(
            "unified aggregation (sum)",
            dglx::gspmm(csc, x, dglx::Reducer::Sum, nullptr, dctx),
            pygx::scatterSum(msgs, edst, n, pctx), bitExact);
        !r)
        return r;
    if (Result r = compareTensors(
            "unified aggregation (mean)",
            dglx::gspmm(csc, x, dglx::Reducer::Mean, nullptr, dctx),
            pygx::scatterMean(msgs, edst, n, pctx), bitExact);
        !r)
        return r;
    if (Result r = compareTensors(
            "unified aggregation (max)",
            dglx::gspmm(csc, x, dglx::Reducer::Max, nullptr, dctx),
            pygx::scatterMax(msgs, edst, n, pctx), bitExact);
        !r)
        return r;

    std::vector<float> w(m);
    Tensor wt(static_cast<NodeId>(m), 1);
    for (size_t e = 0; e < m; ++e) {
        w[e] = rng.uniformFloat() - 0.5f;
        wt(static_cast<NodeId>(e), 0) = w[e];
    }
    const Tensor dWeighted =
        dglx::gspmm(csc, x, dglx::Reducer::Sum, w.data(), dctx);
    // Both fused entry points resolve to kernels::spmm, so the
    // weighted reduction is bit-identical across frameworks.
    if (Result r = compareTensors(
            "unified aggregation (weighted fused)", dWeighted,
            pygx::spmm(csc, x, w.data(), pctx), bitExact);
        !r)
        return r;
    // The materialized path rounds each w[e]*x product to float
    // before accumulating, while the fused kernel may contract it
    // into an FMA; hold those to a tight tolerance instead.
    return compareTensors(
        "unified aggregation (weighted materialized)", dWeighted,
        pygx::scatterSum(pygx::mulEdgeScalar(msgs, wt, pctx), edst, n,
                         pctx),
        DiffTol{1e-5f, 1e-6f});
}

} // namespace check
} // namespace gnnbench
