/**
 * @file
 * Exact fixed-point accumulation for order-invariant reductions.
 *
 * The distributed trainer must produce bit-identical weights no
 * matter how the graph is sharded: the same gradient sum computed as
 * one group (1 rank) or as N partial sums (N ranks) has to yield the
 * same float.  Plain float/double addition is not associative, so
 * cross-rank reductions instead accumulate into a 128-bit
 * fixed-point value (a small Kulisch accumulator):
 *
 *   - each float x float product is formed exactly in double
 *     (24 + 24 significand bits fit in double's 53),
 *   - scaled by 2^80 with ldexp (exact: a pure exponent shift) and
 *     truncated to an __int128 (deterministic, per-term),
 *   - added with two's-complement wraparound arithmetic, which is
 *     exactly associative and commutative.
 *
 * Any grouping of the terms — per rank, per thread chunk, or one
 * serial loop — produces the same 128-bit value, so the final
 * double -> float conversion is performed once on identical bits
 * everywhere.  The 2^-80 quantum truncates contributions below
 * ~8e-25 (irrelevant at gradient magnitudes), and the 2^47 integer
 * headroom is far above any realistic gradient sum; toFixed() checks
 * the range in debug builds.
 *
 * This is also what makes the modeled allreduce order-invariant (see
 * dist/comm.h): reducing rank partials in any permutation gives the
 * same bits, which tests/test_dist.cc asserts directly.
 */

#ifndef GNNBENCH_DIST_EXACT_H
#define GNNBENCH_DIST_EXACT_H

#include <cmath>
#include <cstdint>
#include <vector>

#include "gnnbench/core/common.h"
#include "gnnbench/core/tensor.h"

namespace gnnbench {
namespace dist {

/** Fixed-point scale: values are stored as round(v * 2^80). */
constexpr int kFixedPointBits = 80;

/** Encode a double as a 2^-80-quantum fixed-point 128-bit value. */
inline unsigned __int128
toFixed(double v)
{
    const double scaled = std::ldexp(v, kFixedPointBits);
    GNNBENCH_ASSERT(std::abs(scaled) < std::ldexp(1.0, 126),
                    "exact accumulator overflow");
    return static_cast<unsigned __int128>(
        static_cast<__int128>(scaled));
}

/** Decode a fixed-point value back to double (one rounding). */
inline double
fromFixed(unsigned __int128 a)
{
    return std::ldexp(static_cast<double>(static_cast<__int128>(a)),
                      -kFixedPointBits);
}

/**
 * A rows x cols matrix of exact fixed-point accumulators.  The
 * gradient reductions build one per parameter tensor; merge() is the
 * (wraparound, hence order-invariant) allreduce combine step.
 */
class ExactTensor
{
  public:
    ExactTensor() = default;

    ExactTensor(int64_t rows, int64_t cols)
        : rows_(rows), cols_(cols),
          acc_(static_cast<size_t>(rows * cols), 0)
    {
    }

    int64_t rows() const { return rows_; }
    int64_t cols() const { return cols_; }
    int64_t numel() const { return rows_ * cols_; }

    /** acc[i][j] += a * b, exactly. */
    void
    addProduct(int64_t i, int64_t j, float a, float b)
    {
        acc_[static_cast<size_t>(i * cols_ + j)] +=
            toFixed(static_cast<double>(a) * static_cast<double>(b));
    }

    /** acc[i][j] += v, exactly (v quantized once). */
    void
    add(int64_t i, int64_t j, double v)
    {
        acc_[static_cast<size_t>(i * cols_ + j)] += toFixed(v);
    }

    /** Elementwise wraparound merge (the allreduce combine). */
    void
    merge(const ExactTensor &other)
    {
        GNNBENCH_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
                       "ExactTensor::merge shape mismatch");
        for (size_t i = 0; i < acc_.size(); ++i)
            acc_[i] += other.acc_[i];
    }

    /** Raw accumulator words (tests poke at merge order). */
    unsigned __int128 &raw(size_t i) { return acc_[i]; }
    const unsigned __int128 &raw(size_t i) const { return acc_[i]; }

    /** Convert to a float tensor (one rounding per element). */
    core::Tensor
    toTensor() const
    {
        core::Tensor t(rows_, cols_);
        float *p = t.data();
        for (size_t i = 0; i < acc_.size(); ++i)
            p[i] = static_cast<float>(fromFixed(acc_[i]));
        return t;
    }

  private:
    int64_t rows_ = 0;
    int64_t cols_ = 0;
    std::vector<unsigned __int128> acc_;
};

/** A single exact scalar (loss sums, diagnostics). */
class ExactScalar
{
  public:
    void add(double v) { acc_ += toFixed(v); }
    void merge(const ExactScalar &o) { acc_ += o.acc_; }
    double value() const { return fromFixed(acc_); }

  private:
    unsigned __int128 acc_ = 0;
};

} // namespace dist
} // namespace gnnbench

#endif // GNNBENCH_DIST_EXACT_H
