/**
 * @file
 * Graph sharding for partition-parallel training over modeled ranks.
 *
 * A dataset is split across N ranks by destination-node ownership:
 * the multilevel partitioner (graph/partition.h) assigns every node
 * to one rank, and each directed edge u -> v belongs to the rank that
 * owns v (the rank that computes v's aggregation).  Each rank holds:
 *
 *   - localNodes: its owned nodes, ascending in global id, defining
 *     the rank-local row order (a subsequence of the global order, so
 *     per-row kernels reproduce the single-rank bits exactly),
 *   - haloIn:  non-owned in-neighbors of local nodes — the rows whose
 *     features/activations must be fetched before a forward layer,
 *   - haloOut: non-owned out-neighbors of local nodes — the rows
 *     whose upstream gradients must be fetched in the backward pass
 *     (equal to haloIn on symmetrized graphs, distinct in general),
 *   - csc/csr restricted to the local rows, with columns renumbered
 *     into the combined [local | halo] index space and the *global
 *     neighbor order preserved* within every row.
 *
 * Preserving global row order is the keystone of the determinism
 * contract: a node's aggregation is a serial reduction over its CSC
 * row, so computing it on the owner rank over the combined index
 * space produces exactly the bits the 1-rank run produces.
 *
 * checkShard() validates the invariants (edge ownership is a
 * partition, halo sets equal the boundary neighborhoods, the local
 * structures are well-formed induced subgraphs) and runs inside
 * shardGraph() when GNNBENCH_VALIDATE is on; the property suite
 * drives it over generated graphs with shrinking repro seeds.
 */

#ifndef GNNBENCH_DIST_SHARD_H
#define GNNBENCH_DIST_SHARD_H

#include <vector>

#include "gnnbench/check/validate.h"
#include "gnnbench/graph/csr.h"
#include "gnnbench/graph/partition.h"

namespace gnnbench {
namespace dist {

/** One rank's slice of the graph. */
struct RankShard
{
    /** Owned nodes, ascending global ids (local row i is
     *  localNodes[i]). */
    std::vector<NodeId> localNodes;
    /** Non-owned in-neighbors of local nodes, ascending global ids;
     *  combined-in column nLocal + h is haloIn[h]. */
    std::vector<NodeId> haloIn;
    /** Non-owned out-neighbors of local nodes, ascending global ids;
     *  combined-out column nLocal + h is haloOut[h]. */
    std::vector<NodeId> haloOut;
    /** In-adjacency of the local rows over [local | haloIn] columns,
     *  global neighbor order preserved per row. */
    graph::CsrGraph csc;
    /** Out-adjacency of the local rows over [local | haloOut]
     *  columns, global neighbor order preserved per row. */
    graph::CsrGraph csr;

    NodeId numLocal() const
    {
        return static_cast<NodeId>(localNodes.size());
    }
};

/** The full sharded view of one graph. */
struct ShardedGraph
{
    int numRanks = 0;
    /** Global node -> owning rank. */
    std::vector<int32_t> assignment;
    std::vector<RankShard> ranks;
    /** Directed inter-rank edges (self-loops excluded). */
    EdgeId cutEdges = 0;

    /** Owner rank of a global node. */
    int32_t
    owner(NodeId v) const
    {
        return assignment[static_cast<size_t>(v)];
    }
};

/**
 * Shard @p csr / @p csc (the same square graph in both orientations)
 * across @p num_ranks ranks according to @p assignment.  Validates
 * shard invariants via checkShard() when gnncheck is enabled.
 */
ShardedGraph shardGraph(const graph::CsrGraph &csr,
                        const graph::CsrGraph &csc, int num_ranks,
                        std::vector<int32_t> assignment);

/**
 * Convenience: partition with the multilevel partitioner, then
 * shard.  num_ranks == 1 short-circuits to the identity assignment
 * (no partitioner RNG draws), so the 1-rank baseline is exactly the
 * unsharded graph.
 */
ShardedGraph partitionAndShard(const graph::CsrGraph &csr,
                               const graph::CsrGraph &csc,
                               int num_ranks, core::Rng &rng,
                               const graph::PartitionOptions &opts = {});

/**
 * gnncheck validator for the shard invariants:
 *   - every directed edge is owned by exactly one rank (the owner of
 *     its destination), with none dropped or duplicated,
 *   - every rank's haloIn/haloOut equals its boundary in/out
 *     neighborhood (sorted, unique, disjoint from localNodes),
 *   - every rank's local csc/csr is a well-formed induced subgraph
 *     whose rows map back to the global rows, order preserved.
 */
check::Result checkShard(const graph::CsrGraph &csr,
                         const graph::CsrGraph &csc,
                         const ShardedGraph &sharded);

} // namespace dist
} // namespace gnnbench

#endif // GNNBENCH_DIST_SHARD_H
