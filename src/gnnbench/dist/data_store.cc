#include "gnnbench/dist/data_store.h"

#include <cstring>

#include "gnnbench/profiling/metrics_registry.h"

namespace gnnbench {
namespace dist {

FeatureStore::FeatureStore(const core::Tensor &features,
                           const ShardedGraph &sharded,
                           uint64_t halo_capacity_bytes)
    : features_(&features), sharded_(&sharded),
      capacityBytes_(halo_capacity_bytes)
{
    GNNBENCH_CHECK(capacityBytes_ == 0 ||
                       capacityBytes_ >= rowBytes(),
                   "FeatureStore: capacity below one feature row");
    caches_.resize(sharded.ranks.size());
    for (size_t r = 0; r < caches_.size(); ++r) {
        const RankShard &shard = sharded.ranks[r];
        RankCache &cache = caches_[r];
        const auto n_halo =
            static_cast<int64_t>(shard.haloIn.size());
        cache.buffer = core::Tensor(n_halo, features.cols());
        cache.resident.assign(shard.haloIn.size(), 0);
        cache.lastUse.assign(shard.haloIn.size(), 0);
        // Owned rows are preloaded into the rank's partition of the
        // (shared, immutable) feature matrix: charged once, never
        // fetched.
        preloadBytes_ +=
            static_cast<uint64_t>(shard.localNodes.size()) *
            rowBytes();
    }
    profiling::MetricsRegistry::global()
        .counter("datastore.preload.bytes")
        .add(preloadBytes_);
}

bool
FeatureStore::evictOne(RankCache &cache)
{
    size_t victim = cache.resident.size();
    uint64_t oldest = 0;
    for (size_t h = 0; h < cache.resident.size(); ++h) {
        if (!cache.resident[h])
            continue;
        if (victim == cache.resident.size() ||
            cache.lastUse[h] < oldest) {
            victim = h;
            oldest = cache.lastUse[h];
        }
    }
    if (victim == cache.resident.size())
        return false;
    cache.resident[victim] = 0;
    cache.residentBytes -= rowBytes();
    ++evictions_;
    return true;
}

const core::Tensor &
FeatureStore::fetchHalo(int rank, ModeledComm *comm)
{
    GNNBENCH_CHECK(rank >= 0 &&
                       rank < static_cast<int>(caches_.size()),
                   "FeatureStore: bad rank");
    const RankShard &shard =
        sharded_->ranks[static_cast<size_t>(rank)];
    RankCache &cache = caches_[static_cast<size_t>(rank)];
    const uint64_t row_bytes = rowBytes();

    uint64_t hits = 0, misses = 0;
    const uint64_t evictions_before = evictions_;
    std::vector<uint64_t> bytes_from(
        static_cast<size_t>(sharded_->numRanks), 0);

    for (size_t h = 0; h < shard.haloIn.size(); ++h) {
        cache.lastUse[h] = ++cache.useClock;
        if (cache.resident[h]) {
            ++hits;
            continue;
        }
        ++misses;
        const NodeId u = shard.haloIn[h];
        std::memcpy(cache.buffer.row(static_cast<int64_t>(h)),
                    features_->row(u), row_bytes);
        bytes_from[static_cast<size_t>(sharded_->owner(u))] +=
            row_bytes;
        // Admit under the byte budget, evicting LRU residents; a
        // budget too small for even this row just leaves it
        // non-resident (it stays valid in the working buffer).
        while (cache.residentBytes + row_bytes > capacityBytes_ &&
               evictOne(cache)) {
        }
        if (cache.residentBytes + row_bytes <= capacityBytes_) {
            cache.resident[h] = 1;
            cache.residentBytes += row_bytes;
        }
    }

    uint64_t fetch_bytes = 0;
    if (comm != nullptr)
        for (int src = 0; src < sharded_->numRanks; ++src)
            if (bytes_from[static_cast<size_t>(src)] > 0) {
                comm->message(src, rank,
                              bytes_from[static_cast<size_t>(src)],
                              "x");
                fetch_bytes +=
                    bytes_from[static_cast<size_t>(src)];
            }
    if (comm == nullptr)
        for (uint64_t b : bytes_from)
            fetch_bytes += b;

    hits_ += hits;
    misses_ += misses;
    fetchBytes_ += fetch_bytes;
    auto &reg = profiling::MetricsRegistry::global();
    reg.counter("datastore.hits").add(hits);
    reg.counter("datastore.misses").add(misses);
    reg.counter("datastore.fetch.bytes").add(fetch_bytes);
    reg.counter("datastore.evictions")
        .add(evictions_ - evictions_before);
    return cache.buffer;
}

} // namespace dist
} // namespace gnnbench
