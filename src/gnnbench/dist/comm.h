/**
 * @file
 * Modeled interconnect for partition-parallel training.
 *
 * The distributed layer runs N ranks inside one process (like the
 * device model in device/session.h runs a modeled GPU), so the
 * network is a *cost model*, not a transport: every rank owns a
 * virtual clock, and each operation advances it by a deterministic
 * analytic time (LBANN's comm.hpp plays the same role for real MPI).
 *
 *   point-to-point message of b bytes:  alpha + b / beta
 *   ring allreduce of b bytes, N ranks: 2 (N-1) (alpha + (b/N)/beta)
 *   compute of f flops:                 f / computeFlopsPerSec
 *
 * Halo messages are charged to the *receiving* rank (receiver-side
 * serialization; the per-superstep barrier covers the symmetric send
 * side), and every message produces exactly ONE trace event on the
 * receiver's "rank<r>/comm (modeled)" lane — so the comm.messages
 * counter always equals the halo-event count, which
 * scripts/check_trace.sh asserts.  Compute time lands on
 * "rank<r>/compute (modeled)".  barrier() aligns all clocks to the
 * superstep maximum (BSP), keeping per-lane timestamps monotonic.
 *
 * Because the constants and the charged byte counts are fixed, the
 * modeled timeline — and therefore the scaling ablation's modeled
 * speedup — is bit-reproducible on any machine at any thread count.
 *
 * Metrics (process registry): comm.messages, comm.bytes.halo,
 * comm.bytes.allreduce (wire volume 2 b (N-1)), comm.allreduces, and
 * the comm.time.seconds gauge.  The same tallies are kept per
 * ModeledComm instance so one bench run's numbers are not polluted by
 * earlier runs in the process.
 */

#ifndef GNNBENCH_DIST_COMM_H
#define GNNBENCH_DIST_COMM_H

#include <cstdint>
#include <string>
#include <vector>

#include "gnnbench/core/common.h"

namespace gnnbench {
namespace dist {

/** Fixed constants of the modeled network and rank compute. */
struct InterconnectSpec
{
    /** Per-message latency (alpha), seconds. */
    double latencySeconds = 2e-6;
    /** Link bandwidth (beta), bytes/second (100 Gb/s). */
    double bandwidthBytesPerSec = 12.5e9;
    /** Modeled per-rank compute throughput, FLOP/s. */
    double computeFlopsPerSec = 2.0e10;
};

/**
 * Per-rank virtual clocks plus the message cost model.  All methods
 * must be called from the (single) simulating thread; the BSP trainer
 * serializes supersteps anyway.
 */
class ModeledComm
{
  public:
    /** @param num_ranks modeled world size (>= 1). */
    ModeledComm(int num_ranks, InterconnectSpec spec = {});
    ~ModeledComm();

    ModeledComm(const ModeledComm &) = delete;
    ModeledComm &operator=(const ModeledComm &) = delete;

    int numRanks() const { return numRanks_; }
    const InterconnectSpec &spec() const { return spec_; }

    /** Advance @p rank's clock by a modeled compute slice. */
    void compute(int rank, double flops, const char *name);

    /**
     * One halo message @p src -> @p dst of @p bytes payload bytes.
     * Charged to the receiver's clock; one trace event named
     * "halo:<what>" on the receiver's comm lane.
     */
    void message(int src, int dst, uint64_t bytes, const char *what);

    /**
     * Ring allreduce of @p bytes (the float payload size) across all
     * ranks.  Advances every rank's clock by the per-rank ring time;
     * one "allreduce:<what>" event per rank.  No-op at one rank
     * (nothing crosses the wire).
     */
    void allReduce(uint64_t bytes, const char *what);

    /** BSP superstep boundary: align all clocks to the maximum. */
    void barrier();

    /** Current virtual time of @p rank, seconds. */
    double rankSeconds(int rank) const;

    /** max over ranks — the modeled end-to-end time so far. */
    double makespan() const;

    /// @name Per-instance tallies (this run only)
    /// @{
    uint64_t haloMessages() const { return haloMessages_; }
    uint64_t haloBytes() const { return haloBytes_; }
    uint64_t allreduceBytes() const { return allreduceBytes_; }
    uint64_t allreduces() const { return allreduces_; }
    /** Total modeled comm time summed over ranks, seconds. */
    double commSeconds() const { return commSeconds_; }
    /// @}

  private:
    void traceEvent(int rank, bool comm_lane, const std::string &name,
                    double start, double duration);

    int numRanks_;
    InterconnectSpec spec_;
    std::vector<double> clock_;
    /** Trace-time origin of this run's virtual clocks (monotonic
     *  across ModeledComm instances so per-lane timestamps never run
     *  backwards when one bench process trains several configs). */
    double traceOrigin_ = 0.0;

    uint64_t haloMessages_ = 0;
    uint64_t haloBytes_ = 0;
    uint64_t allreduceBytes_ = 0;
    uint64_t allreduces_ = 0;
    double commSeconds_ = 0.0;
};

} // namespace dist
} // namespace gnnbench

#endif // GNNBENCH_DIST_COMM_H
