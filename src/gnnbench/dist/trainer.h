/**
 * @file
 * Partition-parallel full-batch GraphSAGE training over modeled ranks.
 *
 * The graph is sharded by destination ownership (dist/shard.h), every
 * rank holds a replica of the model, and each epoch runs as a fixed
 * BSP superstep schedule, every phase barriered on the modeled
 * interconnect (dist/comm.h):
 *
 *   1. fetch halo features x            (data store, comm)
 *   2. layer-1 forward on local rows    (compute)
 *   3. exchange halo h1 activations     (comm)
 *   4. layer-2 forward, loss, dz2       (compute)
 *   5. exchange halo upstream grads     (comm)
 *   6. backward on local rows           (compute)
 *   7. ring-allreduce the gradients     (comm)
 *   8. identical Adam step per rank     (compute)
 *
 * Determinism contract (asserted by tests/test_dist.cc):
 *   - For a fixed rank count, results are bit-identical across
 *     GNNBENCH_NUM_THREADS: every per-node quantity is computed by a
 *     per-row-pure kernel over the canonical global row order, and
 *     every cross-row reduction goes through the exact fixed-point
 *     accumulator (dist/exact.h), whose grouping does not matter.
 *   - N-rank training produces bit-identical final weights to the
 *     1-rank run: local rows are a subsequence of the global order,
 *     rows keep their global neighbor order, per-node math sees
 *     exactly the same operands, and the allreduced gradients are
 *     exact sums — so all ranks apply the same optimizer step to the
 *     same replica, for any N.
 *
 * The model matches dglx::SageConv semantics (mean aggregation over
 * in-neighbors, self + neighbor weights, bias) with the same Glorot
 * init order, but the 1-rank baseline of the bit-identity contract is
 * this trainer itself at numRanks == 1 — the modeled comm layer, not
 * the framework reimplementations, is what is under test here.
 */

#ifndef GNNBENCH_DIST_TRAINER_H
#define GNNBENCH_DIST_TRAINER_H

#include <cstdint>
#include <limits>
#include <vector>

#include "gnnbench/core/tensor.h"
#include "gnnbench/dist/comm.h"
#include "gnnbench/graph/datasets.h"
#include "gnnbench/graph/partition.h"

namespace gnnbench {
namespace dist {

struct DistConfig
{
    int numRanks = 4;
    int epochs = 3;
    int64_t hiddenDim = 64;
    float lr = 1e-3f;
    uint64_t seed = 42;
    /** Per-rank halo feature cache budget (data store). */
    uint64_t haloCacheBytes = std::numeric_limits<uint64_t>::max();
    InterconnectSpec interconnect;
    graph::PartitionOptions partition;
};

struct DistEpochStats
{
    double loss = 0.0;
    double accuracy = 0.0;
};

/** Names/order of the weight tensors in DistResult::weights. */
constexpr const char *kDistWeightNames[] = {"W1self", "W1neigh",
                                            "b1",     "W2self",
                                            "W2neigh", "b2"};
constexpr int kNumDistWeights = 6;

struct DistResult
{
    /** Final replicated weights (identical on every rank). */
    std::vector<core::Tensor> weights;
    std::vector<DistEpochStats> epochs;

    /** Partition quality. */
    EdgeId cutEdges = 0;
    NodeId maxPartSize = 0;

    /** Modeled communication (this run). */
    uint64_t haloMessages = 0;
    uint64_t haloBytes = 0;
    uint64_t allreduceBytes = 0;
    double commSeconds = 0.0;

    /** Modeled end-to-end time (max rank clock). */
    double modeledSeconds = 0.0;

    /** Data-store accounting (this run). */
    uint64_t datastoreHits = 0;
    uint64_t datastoreMisses = 0;
    uint64_t datastoreEvictions = 0;
    uint64_t datastoreFetchBytes = 0;
    double datastoreHitRate = 0.0;
};

/**
 * Train 2-layer full-batch GraphSAGE on @p dataset across
 * cfg.numRanks modeled ranks.  Deterministic in (cfg, dataset) alone.
 */
DistResult trainDistributedSage(const graph::Dataset &dataset,
                                const DistConfig &cfg);

} // namespace dist
} // namespace gnnbench

#endif // GNNBENCH_DIST_TRAINER_H
