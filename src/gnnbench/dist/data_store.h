/**
 * @file
 * In-memory feature data store for the modeled ranks.
 *
 * Mirrors the partitioned-IO layer of distributed GNN systems (LBANN's
 * partitioned_io_buffer, DistDGL's KVStore): every rank preloads the
 * feature rows of its owned nodes (resident for the whole run, no
 * traffic), and keeps a bounded cache of *halo* feature rows fetched
 * from their owner ranks.  Because node features are immutable across
 * epochs, a halo row fetched in epoch 1 can be served from the cache
 * in later epochs — the fetch traffic then drops to zero and the
 * scaling ablation's data-store hit rate climbs accordingly.  An
 * undersized cache (haloCapacityBytes) forces deterministic
 * least-recently-used eviction and re-fetching, which the accounting
 * tests pin down.
 *
 * fetchHalo() is an epoch-granular bulk operation: it walks the
 * rank's haloIn set in ascending order, counts a hit or a miss per
 * row, groups the misses by owner rank into one modeled message per
 * (owner -> rank) pair, and returns the fully materialized halo
 * feature buffer (rows in haloIn order) for the layer-1 aggregation.
 * All accounting is sequential and deterministic: same shard, same
 * capacity -> bit-identical hit/miss/eviction counts at any thread
 * count.
 *
 * Metrics: datastore.hits, datastore.misses, datastore.evictions,
 * datastore.fetch.bytes, datastore.preload.bytes — per-instance
 * tallies are kept alongside the process registry.
 */

#ifndef GNNBENCH_DIST_DATA_STORE_H
#define GNNBENCH_DIST_DATA_STORE_H

#include <cstdint>
#include <limits>
#include <vector>

#include "gnnbench/core/tensor.h"
#include "gnnbench/dist/comm.h"
#include "gnnbench/dist/shard.h"

namespace gnnbench {
namespace dist {

class FeatureStore
{
  public:
    /**
     * @param features global numNodes x F feature matrix (borrowed;
     *        must outlive the store)
     * @param sharded  the shard layout (borrowed)
     * @param halo_capacity_bytes per-rank cap on cached halo rows;
     *        the default keeps every halo row resident
     */
    FeatureStore(const core::Tensor &features,
                 const ShardedGraph &sharded,
                 uint64_t halo_capacity_bytes =
                     std::numeric_limits<uint64_t>::max());

    /**
     * Materialize @p rank's halo feature buffer for this epoch,
     * fetching non-resident rows from their owners through @p comm
     * (nullable: accounting without a modeled network).  Returns the
     * nHalo x F buffer, rows in haloIn order.
     */
    const core::Tensor &fetchHalo(int rank, ModeledComm *comm);

    /// @name Accounting (this instance)
    /// @{
    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    uint64_t evictions() const { return evictions_; }
    uint64_t fetchBytes() const { return fetchBytes_; }
    uint64_t preloadBytes() const { return preloadBytes_; }

    /** hits / (hits + misses); 0 before any access. */
    double
    hitRate() const
    {
        const uint64_t total = hits_ + misses_;
        return total > 0
                   ? static_cast<double>(hits_) /
                         static_cast<double>(total)
                   : 0.0;
    }
    /// @}

    /** Bytes of one feature row. */
    uint64_t
    rowBytes() const
    {
        return static_cast<uint64_t>(features_->cols()) * 4;
    }

  private:
    struct RankCache
    {
        /** Halo working buffer, nHalo x F (haloIn row order); all
         *  rows valid after fetchHalo, but only `resident` ones are
         *  served from cache next epoch. */
        core::Tensor buffer;
        std::vector<uint8_t> resident;
        /** LRU stamp per halo row (0 = never used). */
        std::vector<uint64_t> lastUse;
        uint64_t useClock = 0;
        uint64_t residentBytes = 0;
    };

    /** Drop the LRU resident row of @p cache (returns false when
     *  nothing is resident). */
    bool evictOne(RankCache &cache);

    const core::Tensor *features_;
    const ShardedGraph *sharded_;
    uint64_t capacityBytes_;
    std::vector<RankCache> caches_;

    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t evictions_ = 0;
    uint64_t fetchBytes_ = 0;
    uint64_t preloadBytes_ = 0;
};

} // namespace dist
} // namespace gnnbench

#endif // GNNBENCH_DIST_DATA_STORE_H
