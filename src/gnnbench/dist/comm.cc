#include "gnnbench/dist/comm.h"

#include <algorithm>
#include <mutex>

#include "gnnbench/profiling/metrics_registry.h"
#include "gnnbench/profiling/trace.h"

namespace gnnbench {
namespace dist {

namespace {

/**
 * Hands each ModeledComm instance a trace-time origin at or after
 * the end of the previous instance's timeline, so several configs
 * trained by one process (the scaling ablation) never interleave
 * their synthetic events backwards on a shared rank lane.
 */
std::mutex g_origin_mutex;
double g_next_origin = 0.0;

double
claimTraceOrigin()
{
    std::lock_guard lock(g_origin_mutex);
    const auto &rec = profiling::TraceRecorder::global();
    double origin = g_next_origin;
    if (rec.enabled())
        origin = std::max(origin, rec.now());
    g_next_origin = origin;
    return origin;
}

void
publishTraceEnd(double end)
{
    std::lock_guard lock(g_origin_mutex);
    g_next_origin = std::max(g_next_origin, end);
}

std::string
laneName(int rank, bool comm_lane)
{
    return "rank" + std::to_string(rank) +
           (comm_lane ? "/comm (modeled)" : "/compute (modeled)");
}

} // namespace

ModeledComm::ModeledComm(int num_ranks, InterconnectSpec spec)
    : numRanks_(num_ranks), spec_(spec),
      clock_(static_cast<size_t>(num_ranks), 0.0)
{
    GNNBENCH_CHECK(num_ranks >= 1,
                   "ModeledComm: need at least one rank");
    GNNBENCH_CHECK(spec_.latencySeconds >= 0.0 &&
                       spec_.bandwidthBytesPerSec > 0.0 &&
                       spec_.computeFlopsPerSec > 0.0,
                   "ModeledComm: invalid interconnect constants");
    traceOrigin_ = claimTraceOrigin();
}

ModeledComm::~ModeledComm()
{
    publishTraceEnd(traceOrigin_ + makespan());
}

void
ModeledComm::traceEvent(int rank, bool comm_lane,
                        const std::string &name, double start,
                        double duration)
{
    auto &rec = profiling::TraceRecorder::global();
    if (!rec.enabled())
        return;
    rec.recordSynthetic(laneName(rank, comm_lane), name,
                        comm_lane ? "comm" : "compute",
                        traceOrigin_ + start, duration);
}

void
ModeledComm::compute(int rank, double flops, const char *name)
{
    GNNBENCH_ASSERT(rank >= 0 && rank < numRanks_, "bad rank");
    GNNBENCH_ASSERT(flops >= 0.0, "negative flops");
    const double dt = flops / spec_.computeFlopsPerSec;
    traceEvent(rank, false, name, clock_[static_cast<size_t>(rank)],
               dt);
    clock_[static_cast<size_t>(rank)] += dt;
}

void
ModeledComm::message(int src, int dst, uint64_t bytes,
                     const char *what)
{
    GNNBENCH_ASSERT(src >= 0 && src < numRanks_ && dst >= 0 &&
                        dst < numRanks_ && src != dst,
                    "bad message endpoints");
    const double dt = spec_.latencySeconds +
                      static_cast<double>(bytes) /
                          spec_.bandwidthBytesPerSec;
    traceEvent(dst, true, std::string("halo:") + what,
               clock_[static_cast<size_t>(dst)], dt);
    clock_[static_cast<size_t>(dst)] += dt;

    ++haloMessages_;
    haloBytes_ += bytes;
    commSeconds_ += dt;
    auto &reg = profiling::MetricsRegistry::global();
    reg.counter("comm.messages").add(1);
    reg.counter("comm.bytes.halo").add(bytes);
    reg.gauge("comm.time.seconds").set(commSeconds_);
}

void
ModeledComm::allReduce(uint64_t bytes, const char *what)
{
    if (numRanks_ == 1)
        return;
    const double seg = static_cast<double>(bytes) /
                       static_cast<double>(numRanks_);
    const double dt =
        2.0 * static_cast<double>(numRanks_ - 1) *
        (spec_.latencySeconds + seg / spec_.bandwidthBytesPerSec);
    const std::string name = std::string("allreduce:") + what;
    for (int r = 0; r < numRanks_; ++r) {
        traceEvent(r, true, name, clock_[static_cast<size_t>(r)],
                   dt);
        clock_[static_cast<size_t>(r)] += dt;
        commSeconds_ += dt;
    }
    // Wire volume of the ring: every rank sends 2 (N-1) segments.
    const uint64_t wire =
        2 * static_cast<uint64_t>(numRanks_ - 1) * bytes;
    allreduceBytes_ += wire;
    ++allreduces_;
    auto &reg = profiling::MetricsRegistry::global();
    reg.counter("comm.bytes.allreduce").add(wire);
    reg.counter("comm.allreduces").add(1);
    reg.gauge("comm.time.seconds").set(commSeconds_);
}

void
ModeledComm::barrier()
{
    const double top = makespan();
    std::fill(clock_.begin(), clock_.end(), top);
}

double
ModeledComm::rankSeconds(int rank) const
{
    GNNBENCH_ASSERT(rank >= 0 && rank < numRanks_, "bad rank");
    return clock_[static_cast<size_t>(rank)];
}

double
ModeledComm::makespan() const
{
    return *std::max_element(clock_.begin(), clock_.end());
}

} // namespace dist
} // namespace gnnbench
