#include "gnnbench/dist/trainer.h"

#include <memory>

#include "gnnbench/core/optim.h"
#include "gnnbench/core/parallel.h"
#include "gnnbench/dist/data_store.h"
#include "gnnbench/dist/exact.h"
#include "gnnbench/dist/shard.h"
#include "gnnbench/graph/convert.h"

namespace gnnbench {
namespace dist {

namespace {

namespace ag = core::ag;
namespace ops = core::ops;
using core::Tensor;
using core::parallel::parallelFor;

/** Rows per chunk of the per-node loops (any fixed value preserves
 *  determinism — per-row results never depend on chunking). */
constexpr int64_t kRowGrain = 64;

/**
 * Mean aggregation over the shard's CSC: out[i] = invdeg[i] *
 * sum_{col in row i} src(col), where src resolves combined columns
 * against [local | halo] and the per-row accumulation runs serially
 * in the preserved global neighbor order — the bit pattern is
 * therefore identical to the 1-rank run for every row.
 */
Tensor
aggregateMean(const graph::CsrGraph &csc, const Tensor &local,
              const Tensor &halo, const std::vector<float> &invdeg)
{
    const int64_t cols = local.cols();
    const auto n_local = static_cast<int64_t>(csc.numRows);
    Tensor out(n_local, cols);
    parallelFor(0, n_local, kRowGrain, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i) {
            float *orow = out.row(i);
            for (EdgeId e = csc.indptr[i]; e < csc.indptr[i + 1];
                 ++e) {
                const NodeId col =
                    csc.indices[static_cast<size_t>(e)];
                const float *srow =
                    col < local.rows()
                        ? local.row(col)
                        : halo.row(col - local.rows());
                for (int64_t f = 0; f < cols; ++f)
                    orow[f] += srow[f];
            }
            const float s = invdeg[static_cast<size_t>(i)];
            for (int64_t f = 0; f < cols; ++f)
                orow[f] *= s;
        }
    });
    return out;
}

/**
 * Backward gather over the shard's CSR: out[i] += sum_{col in row i}
 * src(col) — the transpose-aggregation of the mean (the in-degree
 * scaling is already folded into src by the caller).  Same canonical
 * per-row order as aggregateMean.
 */
void
addCsrGather(const graph::CsrGraph &csr, const Tensor &local,
             const Tensor &halo, Tensor *out)
{
    const int64_t cols = local.cols();
    parallelFor(
        0, static_cast<int64_t>(csr.numRows), kRowGrain,
        [&](int64_t i0, int64_t i1) {
            for (int64_t i = i0; i < i1; ++i) {
                float *orow = out->row(i);
                for (EdgeId e = csr.indptr[i];
                     e < csr.indptr[i + 1]; ++e) {
                    const NodeId col =
                        csr.indices[static_cast<size_t>(e)];
                    const float *srow =
                        col < local.rows()
                            ? local.row(col)
                            : halo.row(col - local.rows());
                    for (int64_t f = 0; f < cols; ++f)
                        orow[f] += srow[f];
                }
            }
        });
}

/**
 * Exact a^T b: an (a.cols x b.cols) fixed-point accumulator holding
 * sum_u a(u,i) * b(u,j) — the rank-partitionable half of every
 * gradient.  Chunked over output rows; each element's terms combine
 * with wraparound adds, so neither thread chunking nor rank grouping
 * changes the result.
 */
ExactTensor
exactMatmulTa(const Tensor &a, const Tensor &b)
{
    GNNBENCH_ASSERT(a.rows() == b.rows(),
                    "exactMatmulTa row mismatch");
    ExactTensor out(a.cols(), b.cols());
    parallelFor(0, a.cols(), 8, [&](int64_t i0, int64_t i1) {
        for (int64_t u = 0; u < a.rows(); ++u) {
            const float *arow = a.row(u);
            const float *brow = b.row(u);
            for (int64_t i = i0; i < i1; ++i) {
                const float av = arow[i];
                if (av == 0.0f)
                    continue;
                for (int64_t j = 0; j < b.cols(); ++j)
                    out.addProduct(i, j, av, brow[j]);
            }
        }
    });
    return out;
}

/** Exact column sum of b (the bias gradient). */
ExactTensor
exactColSum(const Tensor &b)
{
    ExactTensor out(1, b.cols());
    parallelFor(0, b.cols(), 32, [&](int64_t j0, int64_t j1) {
        for (int64_t u = 0; u < b.rows(); ++u) {
            const float *brow = b.row(u);
            for (int64_t j = j0; j < j1; ++j)
                out.add(0, j, static_cast<double>(brow[j]));
        }
    });
    return out;
}

/**
 * Upstream gradient of the *global-mean* NLL loss w.r.t. the
 * log-probabilities: -1/n_train_global at (row, label) for the local
 * training rows, zero elsewhere.  (ops::nllLossGrad divides by the
 * *local* row count, which would make the loss depend on the
 * sharding.)
 */
Tensor
globalNllGrad(const Tensor &lp, const std::vector<int32_t> &labels,
              const std::vector<NodeId> &train_rows,
              int64_t n_train_global)
{
    Tensor g(lp.rows(), lp.cols());
    const float inv = -1.0f / static_cast<float>(n_train_global);
    for (NodeId r : train_rows)
        g(r, labels[static_cast<size_t>(r)]) = inv;
    return g;
}

/** One rank's per-epoch working set. */
struct RankState
{
    std::vector<ag::Var> params; ///< W1s, W1n, b1, W2s, W2n, b2
    std::unique_ptr<core::Adam> opt;

    Tensor xLocal;
    std::vector<int32_t> labels;      ///< per local row
    std::vector<NodeId> trainRows;    ///< local row indices
    std::vector<float> invDeg;

    // Epoch temporaries (kept across supersteps within an epoch).
    const Tensor *haloX = nullptr;
    Tensor agg1, z1, h1, h1Halo;
    Tensor agg2, dz2, y2s, yHalo;
    std::vector<ExactTensor> grads;
    ExactScalar lossSum;
    int64_t correct = 0;
};

/**
 * Materialize @p rank's halo rows of a per-rank row-partitioned
 * matrix (activations or gradients), charging one message per
 * sending rank.
 */
Tensor
gatherHalo(const ShardedGraph &sharded, int rank,
           const std::vector<NodeId> &halo,
           const std::vector<RankState> &states,
           Tensor RankState::*field,
           const std::vector<NodeId> &local_row_of, ModeledComm *comm,
           const char *what)
{
    const RankState &self = states[static_cast<size_t>(rank)];
    const int64_t cols =
        (self.*field).cols() > 0
            ? (self.*field).cols()
            : (states[0].*field).cols();
    Tensor out(static_cast<int64_t>(halo.size()), cols);
    std::vector<uint64_t> bytes_from(
        static_cast<size_t>(sharded.numRanks), 0);
    for (size_t h = 0; h < halo.size(); ++h) {
        const NodeId u = halo[h];
        const int32_t owner = sharded.owner(u);
        const Tensor &src =
            states[static_cast<size_t>(owner)].*field;
        const float *srow =
            src.row(local_row_of[static_cast<size_t>(u)]);
        float *orow = out.row(static_cast<int64_t>(h));
        for (int64_t f = 0; f < cols; ++f)
            orow[f] = srow[f];
        bytes_from[static_cast<size_t>(owner)] +=
            static_cast<uint64_t>(cols) * 4;
    }
    for (int src = 0; src < sharded.numRanks; ++src)
        if (bytes_from[static_cast<size_t>(src)] > 0)
            comm->message(src, rank,
                          bytes_from[static_cast<size_t>(src)],
                          what);
    return out;
}

} // namespace

DistResult
trainDistributedSage(const graph::Dataset &dataset,
                     const DistConfig &cfg)
{
    GNNBENCH_CHECK(cfg.numRanks >= 1, "numRanks must be >= 1");
    GNNBENCH_CHECK(cfg.epochs >= 1, "epochs must be >= 1");
    const auto n_train =
        static_cast<int64_t>(dataset.trainIdx.size());
    GNNBENCH_CHECK(n_train > 0, "dataset has no training nodes");

    const graph::CsrGraph csr = graph::cooToCsr(dataset.graph);
    const graph::CsrGraph csc = graph::cooToCsc(dataset.graph);
    const int64_t F = dataset.features.cols();
    const int64_t H = cfg.hiddenDim;
    const int64_t C = dataset.info.numClasses;

    // Shared model init: the weight stream is forked before the
    // partitioner stream, so every rank count starts from the same
    // replica bits.
    core::Rng rng(cfg.seed);
    core::Rng wrng = rng.fork();
    core::Rng prng = rng.fork();
    Tensor init[kNumDistWeights] = {
        Tensor::glorot(F, H, wrng), Tensor::glorot(F, H, wrng),
        Tensor::zeros(1, H),        Tensor::glorot(H, C, wrng),
        Tensor::glorot(H, C, wrng), Tensor::zeros(1, C)};

    const ShardedGraph sharded = partitionAndShard(
        csr, csc, cfg.numRanks, prng, cfg.partition);

    DistResult result;
    result.cutEdges = sharded.cutEdges;
    for (const RankShard &shard : sharded.ranks)
        result.maxPartSize =
            std::max(result.maxPartSize, shard.numLocal());

    ModeledComm comm(cfg.numRanks, cfg.interconnect);
    FeatureStore store(dataset.features, sharded,
                       cfg.haloCacheBytes);

    // Owner-local row index of every global node.
    std::vector<NodeId> local_row_of(
        static_cast<size_t>(csr.numRows), 0);
    for (const RankShard &shard : sharded.ranks)
        for (NodeId i = 0; i < shard.numLocal(); ++i)
            local_row_of[static_cast<size_t>(
                shard.localNodes[i])] = i;
    std::vector<uint8_t> is_train(
        static_cast<size_t>(csr.numRows), 0);
    for (NodeId v : dataset.trainIdx)
        is_train[static_cast<size_t>(v)] = 1;

    std::vector<RankState> states(
        static_cast<size_t>(cfg.numRanks));
    for (int r = 0; r < cfg.numRanks; ++r) {
        const RankShard &shard =
            sharded.ranks[static_cast<size_t>(r)];
        RankState &st = states[static_cast<size_t>(r)];
        for (const Tensor &w : init)
            st.params.push_back(ag::leaf(w.clone(), true));
        st.opt =
            std::make_unique<core::Adam>(st.params, cfg.lr);
        st.xLocal =
            ops::gatherRows(dataset.features, shard.localNodes);
        st.labels.resize(static_cast<size_t>(shard.numLocal()));
        st.invDeg.resize(static_cast<size_t>(shard.numLocal()));
        for (NodeId i = 0; i < shard.numLocal(); ++i) {
            const NodeId v = shard.localNodes[i];
            st.labels[static_cast<size_t>(i)] =
                dataset.labels[static_cast<size_t>(v)];
            const EdgeId d = shard.csc.degree(i);
            st.invDeg[static_cast<size_t>(i)] =
                d > 0 ? 1.0f / static_cast<float>(d) : 0.0f;
            if (is_train[static_cast<size_t>(v)])
                st.trainRows.push_back(i);
        }
    }

    const auto param_floats = [&] {
        int64_t n = 0;
        for (const Tensor &w : init)
            n += w.numel();
        return n;
    }();

    for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
        // S1: halo feature fetch through the data store.
        for (int r = 0; r < cfg.numRanks; ++r)
            states[static_cast<size_t>(r)].haloX =
                &store.fetchHalo(r, &comm);
        comm.barrier();

        // S2: layer-1 forward.
        for (int r = 0; r < cfg.numRanks; ++r) {
            RankState &st = states[static_cast<size_t>(r)];
            const RankShard &shard =
                sharded.ranks[static_cast<size_t>(r)];
            st.agg1 = aggregateMean(shard.csc, st.xLocal,
                                    *st.haloX, st.invDeg);
            st.z1 = ops::addBias(
                ops::add(ops::matmul(st.xLocal,
                                     st.params[0]->value),
                         ops::matmul(st.agg1,
                                     st.params[1]->value)),
                st.params[2]->value);
            st.h1 = ops::relu(st.z1);
            const double n = shard.numLocal();
            const double e = shard.csc.numEdges();
            comm.compute(r,
                         4.0 * n * F * H + 2.0 * e * F +
                             3.0 * n * H,
                         "layer1");
        }
        comm.barrier();

        // S3: halo exchange of h1.
        for (int r = 0; r < cfg.numRanks; ++r)
            states[static_cast<size_t>(r)].h1Halo = gatherHalo(
                sharded, r,
                sharded.ranks[static_cast<size_t>(r)].haloIn,
                states, &RankState::h1, local_row_of, &comm, "h1");
        comm.barrier();

        // S4: layer-2 forward, loss, dz2, and the scaled upstream
        // gradient that must travel in S5.
        for (int r = 0; r < cfg.numRanks; ++r) {
            RankState &st = states[static_cast<size_t>(r)];
            const RankShard &shard =
                sharded.ranks[static_cast<size_t>(r)];
            st.agg2 = aggregateMean(shard.csc, st.h1, st.h1Halo,
                                    st.invDeg);
            Tensor z2 = ops::addBias(
                ops::add(ops::matmul(st.h1,
                                     st.params[3]->value),
                         ops::matmul(st.agg2,
                                     st.params[4]->value)),
                st.params[5]->value);
            Tensor lp = ops::logSoftmax(z2);
            st.lossSum = ExactScalar();
            for (NodeId i : st.trainRows)
                st.lossSum.add(-static_cast<double>(lp(
                    i, st.labels[static_cast<size_t>(i)])));
            // countCorrect treats an empty row list as "all rows";
            // a rank whose shard holds no training nodes must
            // contribute zero instead.
            st.correct = st.trainRows.empty()
                             ? 0
                             : ops::countCorrect(z2, st.labels,
                                                 st.trainRows);
            Tensor dlp = globalNllGrad(lp, st.labels,
                                       st.trainRows, n_train);
            st.dz2 = ops::logSoftmaxGrad(lp, dlp);
            st.y2s = ops::rowScale(
                ops::matmulTb(st.dz2, st.params[4]->value),
                st.invDeg);
            const double n = shard.numLocal();
            const double e = shard.csc.numEdges();
            comm.compute(r,
                         4.0 * n * H * C + 2.0 * e * H +
                             8.0 * n * C + 2.0 * n * C * H,
                         "layer2+loss");
        }
        comm.barrier();

        // S5: halo exchange of the scaled upstream gradients.
        for (int r = 0; r < cfg.numRanks; ++r)
            states[static_cast<size_t>(r)].yHalo = gatherHalo(
                sharded, r,
                sharded.ranks[static_cast<size_t>(r)].haloOut,
                states, &RankState::y2s, local_row_of, &comm,
                "dh");
        comm.barrier();

        // S6: backward on local rows; exact partial gradients.
        for (int r = 0; r < cfg.numRanks; ++r) {
            RankState &st = states[static_cast<size_t>(r)];
            const RankShard &shard =
                sharded.ranks[static_cast<size_t>(r)];
            Tensor dh1 =
                ops::matmulTb(st.dz2, st.params[3]->value);
            addCsrGather(shard.csr, st.y2s, st.yHalo, &dh1);
            Tensor dz1 = ops::reluGrad(st.z1, dh1);
            st.grads.clear();
            st.grads.push_back(exactMatmulTa(st.xLocal, dz1));
            st.grads.push_back(exactMatmulTa(st.agg1, dz1));
            st.grads.push_back(exactColSum(dz1));
            st.grads.push_back(exactMatmulTa(st.h1, st.dz2));
            st.grads.push_back(exactMatmulTa(st.agg2, st.dz2));
            st.grads.push_back(exactColSum(st.dz2));
            const double n = shard.numLocal();
            const double e = shard.csr.numEdges();
            comm.compute(r,
                         2.0 * n * C * H + 2.0 * e * H +
                             4.0 * n * F * H + 4.0 * n * H * C +
                             2.0 * n * (H + C),
                         "backward");
        }
        comm.barrier();

        // S7: ring allreduce — exact merge in any order gives the
        // same bits; the modeled ring is charged the float payload.
        std::vector<ExactTensor> merged = std::move(
            states[0].grads);
        ExactScalar loss_sum = states[0].lossSum;
        int64_t correct = states[0].correct;
        for (int r = 1; r < cfg.numRanks; ++r) {
            RankState &st = states[static_cast<size_t>(r)];
            for (int k = 0; k < kNumDistWeights; ++k)
                merged[static_cast<size_t>(k)].merge(
                    st.grads[static_cast<size_t>(k)]);
            loss_sum.merge(st.lossSum);
            correct += st.correct;
            st.grads.clear();
        }
        comm.allReduce(
            static_cast<uint64_t>(param_floats) * 4 + 16,
            "grads");
        comm.barrier();

        // S8: identical optimizer step on every replica.
        Tensor grad_f[kNumDistWeights];
        for (int k = 0; k < kNumDistWeights; ++k)
            grad_f[k] = merged[static_cast<size_t>(k)].toTensor();
        for (int r = 0; r < cfg.numRanks; ++r) {
            RankState &st = states[static_cast<size_t>(r)];
            for (int k = 0; k < kNumDistWeights; ++k)
                st.params[static_cast<size_t>(k)]->grad =
                    grad_f[k];
            st.opt->step();
            comm.compute(r,
                         10.0 * static_cast<double>(param_floats),
                         "adam");
        }
        comm.barrier();

        DistEpochStats es;
        es.loss =
            loss_sum.value() / static_cast<double>(n_train);
        es.accuracy = static_cast<double>(correct) /
                      static_cast<double>(n_train);
        result.epochs.push_back(es);
    }

    for (const auto &p : states[0].params)
        result.weights.push_back(p->value.clone());

    result.haloMessages = comm.haloMessages();
    result.haloBytes = comm.haloBytes();
    result.allreduceBytes = comm.allreduceBytes();
    result.commSeconds = comm.commSeconds();
    result.modeledSeconds = comm.makespan();
    result.datastoreHits = store.hits();
    result.datastoreMisses = store.misses();
    result.datastoreEvictions = store.evictions();
    result.datastoreFetchBytes = store.fetchBytes();
    result.datastoreHitRate = store.hitRate();
    return result;
}

} // namespace dist
} // namespace gnnbench
