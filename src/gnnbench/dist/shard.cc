#include "gnnbench/dist/shard.h"

#include <algorithm>
#include <sstream>

namespace gnnbench {
namespace dist {

namespace {

using graph::CsrGraph;

/**
 * Collect the sorted, unique, non-owned neighbors of @p locals in
 * @p adj (rows = the nodes themselves, one global row per local).
 */
std::vector<NodeId>
boundaryNeighbors(const CsrGraph &adj,
                  const std::vector<NodeId> &locals,
                  const std::vector<int32_t> &assignment, int32_t rank)
{
    std::vector<NodeId> halo;
    for (NodeId v : locals)
        for (EdgeId e = adj.indptr[v]; e < adj.indptr[v + 1]; ++e) {
            const NodeId u = adj.indices[static_cast<size_t>(e)];
            if (assignment[static_cast<size_t>(u)] != rank)
                halo.push_back(u);
        }
    std::sort(halo.begin(), halo.end());
    halo.erase(std::unique(halo.begin(), halo.end()), halo.end());
    return halo;
}

/**
 * Restrict @p adj to the rows in @p locals, renumbering columns into
 * the combined [local | halo] space and preserving per-row order.
 * @p to_local maps owned nodes to their local index; halo columns are
 * looked up by binary search in the sorted @p halo.
 */
CsrGraph
localizeRows(const CsrGraph &adj, const std::vector<NodeId> &locals,
             const std::vector<NodeId> &halo,
             const std::vector<NodeId> &to_local,
             const std::vector<int32_t> &assignment, int32_t rank)
{
    CsrGraph out;
    out.numRows = static_cast<NodeId>(locals.size());
    out.numCols = static_cast<NodeId>(locals.size() + halo.size());
    out.indptr.assign(locals.size() + 1, 0);
    EdgeId nnz = 0;
    for (size_t i = 0; i < locals.size(); ++i)
        nnz += adj.degree(locals[i]);
    out.indices.reserve(static_cast<size_t>(nnz));
    const auto n_local = static_cast<NodeId>(locals.size());
    for (size_t i = 0; i < locals.size(); ++i) {
        const NodeId v = locals[i];
        for (EdgeId e = adj.indptr[v]; e < adj.indptr[v + 1]; ++e) {
            const NodeId u = adj.indices[static_cast<size_t>(e)];
            NodeId col;
            if (assignment[static_cast<size_t>(u)] == rank) {
                col = to_local[static_cast<size_t>(u)];
            } else {
                const auto it = std::lower_bound(halo.begin(),
                                                 halo.end(), u);
                col = n_local +
                      static_cast<NodeId>(it - halo.begin());
            }
            out.indices.push_back(col);
        }
        out.indptr[i + 1] = static_cast<EdgeId>(out.indices.size());
    }
    return out;
}

} // namespace

ShardedGraph
shardGraph(const CsrGraph &csr, const CsrGraph &csc, int num_ranks,
           std::vector<int32_t> assignment)
{
    GNNBENCH_CHECK(csr.numRows == csr.numCols &&
                       csc.numRows == csc.numCols &&
                       csr.numRows == csc.numRows,
                   "shardGraph expects both orientations of one "
                   "square graph");
    GNNBENCH_CHECK(num_ranks > 0, "shardGraph: num_ranks must be > 0");
    GNNBENCH_CHECK(assignment.size() ==
                       static_cast<size_t>(csr.numRows),
                   "shardGraph: assignment does not cover the graph");

    ShardedGraph sg;
    sg.numRanks = num_ranks;
    sg.assignment = std::move(assignment);
    sg.ranks.resize(static_cast<size_t>(num_ranks));
    sg.cutEdges = graph::countCutEdges(csr, sg.assignment);

    // Local index of every owned node (ascending global order).
    std::vector<NodeId> to_local(static_cast<size_t>(csr.numRows),
                                 -1);
    {
        std::vector<NodeId> next(static_cast<size_t>(num_ranks), 0);
        for (NodeId v = 0; v < csr.numRows; ++v) {
            const int32_t r = sg.assignment[static_cast<size_t>(v)];
            GNNBENCH_CHECK(r >= 0 && r < num_ranks,
                           "shardGraph: node ", v,
                           " assigned outside [0, ", num_ranks, ")");
            to_local[static_cast<size_t>(v)] =
                next[static_cast<size_t>(r)]++;
            sg.ranks[static_cast<size_t>(r)].localNodes.push_back(v);
        }
    }

    for (int32_t r = 0; r < num_ranks; ++r) {
        RankShard &shard = sg.ranks[static_cast<size_t>(r)];
        shard.haloIn = boundaryNeighbors(csc, shard.localNodes,
                                         sg.assignment, r);
        shard.haloOut = boundaryNeighbors(csr, shard.localNodes,
                                          sg.assignment, r);
        shard.csc = localizeRows(csc, shard.localNodes, shard.haloIn,
                                 to_local, sg.assignment, r);
        shard.csr = localizeRows(csr, shard.localNodes, shard.haloOut,
                                 to_local, sg.assignment, r);
    }

    if (check::enabled())
        check::require(checkShard(csr, csc, sg));
    return sg;
}

ShardedGraph
partitionAndShard(const CsrGraph &csr, const CsrGraph &csc,
                  int num_ranks, core::Rng &rng,
                  const graph::PartitionOptions &opts)
{
    std::vector<int32_t> assignment;
    if (num_ranks == 1) {
        // Identity shard: no partitioner RNG draws, so the 1-rank
        // baseline never depends on partitioner internals.
        assignment.assign(static_cast<size_t>(csr.numRows), 0);
    } else {
        assignment =
            graph::partitionGraph(csr, num_ranks, rng, opts)
                .assignment;
    }
    return shardGraph(csr, csc, num_ranks, std::move(assignment));
}

namespace {

/** checkShard helper: one orientation's rows + halo of one rank. */
check::Result
checkRankOrientation(const CsrGraph &global, const RankShard &shard,
                     const std::vector<NodeId> &halo,
                     const CsrGraph &local,
                     const std::vector<int32_t> &assignment,
                     int32_t rank, const char *what)
{
    const auto n_local = static_cast<NodeId>(shard.localNodes.size());
    const auto fail = [&](const std::string &msg) {
        std::ostringstream oss;
        oss << "shard rank " << rank << " " << what << ": " << msg;
        return check::Result::fail(oss.str());
    };

    // Halo soundness: sorted, unique, in range, none owned.
    for (size_t h = 0; h < halo.size(); ++h) {
        const NodeId u = halo[h];
        if (u < 0 || u >= global.numRows)
            return fail("halo node out of range");
        if (assignment[static_cast<size_t>(u)] == rank)
            return fail("halo contains an owned node");
        if (h > 0 && halo[h - 1] >= u)
            return fail("halo not sorted/unique");
    }

    // Structure: one local row per owned node, every row mapping
    // back to the global row with order preserved (this simultaneously
    // proves edge ownership — each global edge appears in exactly the
    // destination/source owner's rows — and induced-subgraph
    // validity).
    auto r = check::checkCsr(local);
    if (!r.ok)
        return fail(r.message);
    if (local.numRows != n_local)
        return fail("local row count != owned node count");
    if (local.numCols !=
        n_local + static_cast<NodeId>(halo.size()))
        return fail("local column space != local + halo");
    std::vector<bool> halo_touched(halo.size(), false);
    for (NodeId i = 0; i < n_local; ++i) {
        const NodeId v = shard.localNodes[i];
        if (local.degree(i) != global.degree(v))
            return fail("local row degree mismatch");
        for (EdgeId e = local.indptr[i], ge = global.indptr[v];
             e < local.indptr[i + 1]; ++e, ++ge) {
            const NodeId col = local.indices[static_cast<size_t>(e)];
            const NodeId gu =
                global.indices[static_cast<size_t>(ge)];
            NodeId mapped;
            if (col < n_local) {
                mapped = shard.localNodes[static_cast<size_t>(col)];
                if (assignment[static_cast<size_t>(mapped)] != rank)
                    return fail("local column maps to foreign node");
            } else {
                mapped = halo[static_cast<size_t>(col - n_local)];
                halo_touched[static_cast<size_t>(col - n_local)] =
                    true;
            }
            if (mapped != gu)
                return fail("row order not preserved vs global row");
        }
    }
    // Halo completeness: every halo entry is actually referenced
    // (halo == boundary neighborhood, not a superset).
    for (size_t h = 0; h < halo.size(); ++h)
        if (!halo_touched[h])
            return fail("halo contains a non-boundary node");
    return check::Result::pass();
}

} // namespace

check::Result
checkShard(const CsrGraph &csr, const CsrGraph &csc,
           const ShardedGraph &sharded)
{
    if (sharded.numRanks <= 0)
        return check::Result::fail("shard: numRanks <= 0");
    if (sharded.assignment.size() !=
        static_cast<size_t>(csr.numRows))
        return check::Result::fail(
            "shard: assignment does not cover every node");

    NodeId covered = 0;
    EdgeId csc_edges = 0, csr_edges = 0;
    for (const RankShard &shard : sharded.ranks) {
        covered += shard.numLocal();
        csc_edges += shard.csc.numEdges();
        csr_edges += shard.csr.numEdges();
    }
    if (covered != csr.numRows)
        return check::Result::fail(
            "shard: ranks do not partition the node set");
    // Every edge owned exactly once: per-orientation totals match the
    // global edge count (per-row identity below pins *which* edges).
    if (csc_edges != csc.numEdges() || csr_edges != csr.numEdges())
        return check::Result::fail(
            "shard: edge ownership is not a partition of the edges");

    for (int32_t r = 0; r < sharded.numRanks; ++r) {
        const RankShard &shard =
            sharded.ranks[static_cast<size_t>(r)];
        for (NodeId i = 0; i < shard.numLocal(); ++i) {
            const NodeId v = shard.localNodes[i];
            if (v < 0 || v >= csr.numRows)
                return check::Result::fail(
                    "shard: local node out of range");
            if (sharded.assignment[static_cast<size_t>(v)] != r)
                return check::Result::fail(
                    "shard: rank holds a node it does not own");
            if (i > 0 && shard.localNodes[i - 1] >= v)
                return check::Result::fail(
                    "shard: localNodes not ascending");
        }
        auto res = checkRankOrientation(csc, shard, shard.haloIn,
                                        shard.csc,
                                        sharded.assignment, r,
                                        "csc/haloIn");
        if (!res.ok)
            return res;
        res = checkRankOrientation(csr, shard, shard.haloOut,
                                   shard.csr, sharded.assignment, r,
                                   "csr/haloOut");
        if (!res.ok)
            return res;
    }
    return check::Result::pass();
}

} // namespace dist
} // namespace gnnbench
