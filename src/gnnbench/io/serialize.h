/**
 * @file
 * Binary serialization of datasets and model parameters.
 *
 * Benchmark runs synthesize datasets deterministically, but
 * downstream users want to snapshot exact inputs and trained weights
 * (e.g. to compare frameworks on byte-identical data, or to resume
 * training).  The format is a simple tagged binary layout:
 * magic, format version, then length-prefixed sections — fully
 * validated on load (truncation, bad magic, and shape mismatches are
 * fatal with a clear message).
 */

#ifndef GNNBENCH_IO_SERIALIZE_H
#define GNNBENCH_IO_SERIALIZE_H

#include <iosfwd>
#include <string>
#include <vector>

#include "gnnbench/core/autograd.h"
#include "gnnbench/graph/csr.h"
#include "gnnbench/graph/datasets.h"

namespace gnnbench {
namespace io {

/** On-disk encodings for a CSR adjacency. */
enum class CsrStorageMode : uint32_t
{
    Raw = 0,          ///< indptr/indices as raw little-endian arrays
    /**
     * Zigzag-varint delta encoding: per row, the neighbor list is
     * stored as first-id-then-ascending-deltas (reordered graphs keep
     * neighbor ids close together, so most deltas fit one byte), and
     * indptr is stored as per-row degrees, also varint.  Lossless;
     * pays off after a locality pass (graph/reorder.h) shrinks the
     * index bandwidth.
     */
    DeltaVarint = 1,
};

/** Serialize a CSR adjacency to @p out in the given storage mode. */
void writeCsr(std::ostream &out, const graph::CsrGraph &g,
              CsrStorageMode mode = CsrStorageMode::Raw);

/** Deserialize a CSR written by writeCsr (mode is self-describing). */
graph::CsrGraph readCsr(std::istream &in);

/** writeCsr to a file with a magic/version header. */
void saveCsr(const graph::CsrGraph &g, const std::string &path,
             CsrStorageMode mode = CsrStorageMode::Raw);

/** Load a file written by saveCsr. */
graph::CsrGraph loadCsr(const std::string &path);

/** Serialize one tensor (shape + raw float32 data). */
void writeTensor(std::ostream &out, const core::Tensor &t);

/** Deserialize one tensor; fatal on truncation. */
core::Tensor readTensor(std::istream &in);

/** Save a dataset (graph, features, labels, splits) to @p path. */
void saveDataset(const graph::Dataset &dataset,
                 const std::string &path);

/** Load a dataset previously saved with saveDataset. */
graph::Dataset loadDatasetFile(const std::string &path);

/**
 * Save the values of a parameter list (e.g. the concatenated
 * params() of a model's layers) to @p path.
 */
void saveParams(const std::vector<core::ag::Var> &params,
                const std::string &path);

/**
 * Load parameter values saved with saveParams into @p params.
 * Count and shapes must match exactly (fatal otherwise).
 */
void loadParams(const std::vector<core::ag::Var> &params,
                const std::string &path);

} // namespace io
} // namespace gnnbench

#endif // GNNBENCH_IO_SERIALIZE_H
