#include "gnnbench/io/serialize.h"

#include <cstring>
#include <fstream>

namespace gnnbench {
namespace io {

namespace {

constexpr uint64_t kDatasetMagic = 0x474e4e42444154ULL;  // "GNNBDAT"
constexpr uint64_t kParamsMagic = 0x474e4e42505253ULL;   // "GNNBPRS"
constexpr uint32_t kFormatVersion = 1;

template <typename T>
void
writePod(std::ostream &out, const T &value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
T
readPod(std::istream &in)
{
    T value{};
    in.read(reinterpret_cast<char *>(&value), sizeof(T));
    GNNBENCH_CHECK(in.good(), "serialized file truncated");
    return value;
}

template <typename T>
void
writeVec(std::ostream &out, const std::vector<T> &v)
{
    writePod<uint64_t>(out, v.size());
    if (!v.empty())
        out.write(reinterpret_cast<const char *>(v.data()),
                  static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T>
readVec(std::istream &in)
{
    const auto n = readPod<uint64_t>(in);
    std::vector<T> v(n);
    if (n > 0) {
        in.read(reinterpret_cast<char *>(v.data()),
                static_cast<std::streamsize>(n * sizeof(T)));
        GNNBENCH_CHECK(in.good(), "serialized file truncated");
    }
    return v;
}

void
writeString(std::ostream &out, const std::string &s)
{
    writePod<uint64_t>(out, s.size());
    out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string
readString(std::istream &in)
{
    const auto n = readPod<uint64_t>(in);
    std::string s(n, '\0');
    if (n > 0) {
        in.read(s.data(), static_cast<std::streamsize>(n));
        GNNBENCH_CHECK(in.good(), "serialized file truncated");
    }
    return s;
}

} // namespace

void
writeTensor(std::ostream &out, const core::Tensor &t)
{
    writePod<int64_t>(out, t.rows());
    writePod<int64_t>(out, t.cols());
    out.write(reinterpret_cast<const char *>(t.data()),
              static_cast<std::streamsize>(t.bytes()));
}

core::Tensor
readTensor(std::istream &in)
{
    const auto rows = readPod<int64_t>(in);
    const auto cols = readPod<int64_t>(in);
    GNNBENCH_CHECK(rows >= 0 && cols >= 0,
                   "serialized tensor has invalid shape");
    core::Tensor t = core::Tensor::empty(rows, cols);
    if (t.numel() > 0) {
        in.read(reinterpret_cast<char *>(t.data()),
                static_cast<std::streamsize>(t.bytes()));
        GNNBENCH_CHECK(in.good(), "serialized tensor truncated");
    }
    return t;
}

void
saveDataset(const graph::Dataset &dataset, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    GNNBENCH_CHECK(out.is_open(), "cannot open '", path,
                   "' for writing");
    writePod(out, kDatasetMagic);
    writePod(out, kFormatVersion);
    writeString(out, dataset.info.name);
    writePod(out, dataset.scale);
    writePod<int32_t>(out, dataset.info.numClasses);
    writePod<NodeId>(out, dataset.graph.numNodes);
    writeVec(out, dataset.graph.src);
    writeVec(out, dataset.graph.dst);
    writeTensor(out, dataset.features);
    writeVec(out, dataset.labels);
    writeVec(out, dataset.trainIdx);
    writeVec(out, dataset.valIdx);
    writeVec(out, dataset.testIdx);
    GNNBENCH_CHECK(out.good(), "write to '", path, "' failed");
}

graph::Dataset
loadDatasetFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    GNNBENCH_CHECK(in.is_open(), "cannot open '", path,
                   "' for reading");
    GNNBENCH_CHECK(readPod<uint64_t>(in) == kDatasetMagic,
                   "'", path, "' is not a gnnbench dataset file");
    GNNBENCH_CHECK(readPod<uint32_t>(in) == kFormatVersion,
                   "unsupported dataset format version in '", path,
                   "'");
    graph::Dataset ds;
    const std::string name = readString(in);
    ds.info = graph::datasetInfo(name);
    ds.scale = readPod<double>(in);
    const auto classes = readPod<int32_t>(in);
    GNNBENCH_CHECK(classes == ds.info.numClasses,
                   "class count mismatch in '", path, "'");
    ds.graph.numNodes = readPod<NodeId>(in);
    ds.graph.src = readVec<NodeId>(in);
    ds.graph.dst = readVec<NodeId>(in);
    ds.features = readTensor(in);
    ds.labels = readVec<int32_t>(in);
    ds.trainIdx = readVec<NodeId>(in);
    ds.valIdx = readVec<NodeId>(in);
    ds.testIdx = readVec<NodeId>(in);
    ds.graph.validate();
    GNNBENCH_CHECK(ds.features.rows() == ds.graph.numNodes &&
                       ds.labels.size() ==
                           static_cast<size_t>(ds.graph.numNodes),
                   "dataset sections inconsistent in '", path, "'");
    return ds;
}

void
saveParams(const std::vector<core::ag::Var> &params,
           const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    GNNBENCH_CHECK(out.is_open(), "cannot open '", path,
                   "' for writing");
    writePod(out, kParamsMagic);
    writePod(out, kFormatVersion);
    writePod<uint64_t>(out, params.size());
    for (const auto &p : params)
        writeTensor(out, p->value);
    GNNBENCH_CHECK(out.good(), "write to '", path, "' failed");
}

void
loadParams(const std::vector<core::ag::Var> &params,
           const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    GNNBENCH_CHECK(in.is_open(), "cannot open '", path,
                   "' for reading");
    GNNBENCH_CHECK(readPod<uint64_t>(in) == kParamsMagic,
                   "'", path, "' is not a gnnbench parameter file");
    GNNBENCH_CHECK(readPod<uint32_t>(in) == kFormatVersion,
                   "unsupported parameter format version in '", path,
                   "'");
    const auto count = readPod<uint64_t>(in);
    GNNBENCH_CHECK(count == params.size(),
                   "parameter count mismatch: file has ", count,
                   ", model has ", params.size());
    for (const auto &p : params) {
        core::Tensor t = readTensor(in);
        GNNBENCH_CHECK(t.sameShape(p->value),
                       "parameter shape mismatch in '", path, "'");
        p->value = std::move(t);
    }
}

} // namespace io
} // namespace gnnbench
