#include "gnnbench/io/serialize.h"

#include <cstring>
#include <fstream>

namespace gnnbench {
namespace io {

namespace {

constexpr uint64_t kDatasetMagic = 0x474e4e42444154ULL;  // "GNNBDAT"
constexpr uint64_t kParamsMagic = 0x474e4e42505253ULL;   // "GNNBPRS"
constexpr uint64_t kCsrMagic = 0x474e4e42435352ULL;      // "GNNBCSR"
constexpr uint32_t kFormatVersion = 1;

template <typename T>
void
writePod(std::ostream &out, const T &value)
{
    out.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
T
readPod(std::istream &in)
{
    T value{};
    in.read(reinterpret_cast<char *>(&value), sizeof(T));
    GNNBENCH_CHECK(in.good(), "serialized file truncated");
    return value;
}

template <typename T>
void
writeVec(std::ostream &out, const std::vector<T> &v)
{
    writePod<uint64_t>(out, v.size());
    if (!v.empty())
        out.write(reinterpret_cast<const char *>(v.data()),
                  static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T>
readVec(std::istream &in)
{
    const auto n = readPod<uint64_t>(in);
    std::vector<T> v(n);
    if (n > 0) {
        in.read(reinterpret_cast<char *>(v.data()),
                static_cast<std::streamsize>(n * sizeof(T)));
        GNNBENCH_CHECK(in.good(), "serialized file truncated");
    }
    return v;
}

void
writeString(std::ostream &out, const std::string &s)
{
    writePod<uint64_t>(out, s.size());
    out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string
readString(std::istream &in)
{
    const auto n = readPod<uint64_t>(in);
    std::string s(n, '\0');
    if (n > 0) {
        in.read(s.data(), static_cast<std::streamsize>(n));
        GNNBENCH_CHECK(in.good(), "serialized file truncated");
    }
    return s;
}

// Zigzag maps signed deltas onto small unsigned codes (0, -1, 1, -2,
// ... -> 0, 1, 2, 3, ...) so LEB128 varints stay short either way.
uint64_t
zigzagEncode(int64_t v)
{
    return (static_cast<uint64_t>(v) << 1) ^
           static_cast<uint64_t>(v >> 63);
}

int64_t
zigzagDecode(uint64_t u)
{
    return static_cast<int64_t>(u >> 1) ^
           -static_cast<int64_t>(u & 1);
}

void
writeVarint(std::ostream &out, uint64_t u)
{
    while (u >= 0x80) {
        const char byte = static_cast<char>((u & 0x7f) | 0x80);
        out.put(byte);
        u >>= 7;
    }
    out.put(static_cast<char>(u));
}

uint64_t
readVarint(std::istream &in)
{
    uint64_t u = 0;
    int shift = 0;
    while (true) {
        const int c = in.get();
        GNNBENCH_CHECK(c != std::char_traits<char>::eof(),
                       "serialized file truncated");
        GNNBENCH_CHECK(shift < 64, "varint overlong");
        u |= static_cast<uint64_t>(c & 0x7f) << shift;
        if (!(c & 0x80))
            return u;
        shift += 7;
    }
}

} // namespace

void
writeTensor(std::ostream &out, const core::Tensor &t)
{
    writePod<int64_t>(out, t.rows());
    writePod<int64_t>(out, t.cols());
    out.write(reinterpret_cast<const char *>(t.data()),
              static_cast<std::streamsize>(t.bytes()));
}

core::Tensor
readTensor(std::istream &in)
{
    const auto rows = readPod<int64_t>(in);
    const auto cols = readPod<int64_t>(in);
    GNNBENCH_CHECK(rows >= 0 && cols >= 0,
                   "serialized tensor has invalid shape");
    core::Tensor t = core::Tensor::empty(rows, cols);
    if (t.numel() > 0) {
        in.read(reinterpret_cast<char *>(t.data()),
                static_cast<std::streamsize>(t.bytes()));
        GNNBENCH_CHECK(in.good(), "serialized tensor truncated");
    }
    return t;
}

void
saveDataset(const graph::Dataset &dataset, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    GNNBENCH_CHECK(out.is_open(), "cannot open '", path,
                   "' for writing");
    writePod(out, kDatasetMagic);
    writePod(out, kFormatVersion);
    writeString(out, dataset.info.name);
    writePod(out, dataset.scale);
    writePod<int32_t>(out, dataset.info.numClasses);
    writePod<NodeId>(out, dataset.graph.numNodes);
    writeVec(out, dataset.graph.src);
    writeVec(out, dataset.graph.dst);
    writeTensor(out, dataset.features);
    writeVec(out, dataset.labels);
    writeVec(out, dataset.trainIdx);
    writeVec(out, dataset.valIdx);
    writeVec(out, dataset.testIdx);
    GNNBENCH_CHECK(out.good(), "write to '", path, "' failed");
}

graph::Dataset
loadDatasetFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    GNNBENCH_CHECK(in.is_open(), "cannot open '", path,
                   "' for reading");
    GNNBENCH_CHECK(readPod<uint64_t>(in) == kDatasetMagic,
                   "'", path, "' is not a gnnbench dataset file");
    GNNBENCH_CHECK(readPod<uint32_t>(in) == kFormatVersion,
                   "unsupported dataset format version in '", path,
                   "'");
    graph::Dataset ds;
    const std::string name = readString(in);
    ds.info = graph::datasetInfo(name);
    ds.scale = readPod<double>(in);
    const auto classes = readPod<int32_t>(in);
    GNNBENCH_CHECK(classes == ds.info.numClasses,
                   "class count mismatch in '", path, "'");
    ds.graph.numNodes = readPod<NodeId>(in);
    ds.graph.src = readVec<NodeId>(in);
    ds.graph.dst = readVec<NodeId>(in);
    ds.features = readTensor(in);
    ds.labels = readVec<int32_t>(in);
    ds.trainIdx = readVec<NodeId>(in);
    ds.valIdx = readVec<NodeId>(in);
    ds.testIdx = readVec<NodeId>(in);
    ds.graph.validate();
    GNNBENCH_CHECK(ds.features.rows() == ds.graph.numNodes &&
                       ds.labels.size() ==
                           static_cast<size_t>(ds.graph.numNodes),
                   "dataset sections inconsistent in '", path, "'");
    return ds;
}

void
writeCsr(std::ostream &out, const graph::CsrGraph &g,
         CsrStorageMode mode)
{
    writePod<uint32_t>(out, static_cast<uint32_t>(mode));
    writePod<NodeId>(out, g.numRows);
    writePod<NodeId>(out, g.numCols);
    if (mode == CsrStorageMode::Raw) {
        writeVec(out, g.indptr);
        writeVec(out, g.indices);
        return;
    }
    GNNBENCH_CHECK(mode == CsrStorageMode::DeltaVarint,
                   "writeCsr: unknown storage mode");
    writePod<uint64_t>(out, g.indices.size());
    for (NodeId r = 0; r < g.numRows; ++r) {
        writeVarint(out, static_cast<uint64_t>(g.degree(r)));
        NodeId prev = 0;
        bool first = true;
        for (const NodeId *p = g.rowBegin(r); p != g.rowEnd(r); ++p) {
            // First id is a signed delta from the row index itself —
            // after a locality pass neighbors sit near the diagonal,
            // so even the anchor stays short.
            const int64_t delta =
                first ? static_cast<int64_t>(*p) -
                            static_cast<int64_t>(r)
                      : static_cast<int64_t>(*p) -
                            static_cast<int64_t>(prev);
            writeVarint(out, zigzagEncode(delta));
            prev = *p;
            first = false;
        }
    }
}

graph::CsrGraph
readCsr(std::istream &in)
{
    const auto mode =
        static_cast<CsrStorageMode>(readPod<uint32_t>(in));
    graph::CsrGraph g;
    g.numRows = readPod<NodeId>(in);
    g.numCols = readPod<NodeId>(in);
    GNNBENCH_CHECK(g.numRows >= 0 && g.numCols >= 0,
                   "serialized CSR has invalid shape");
    if (mode == CsrStorageMode::Raw) {
        g.indptr = readVec<EdgeId>(in);
        g.indices = readVec<NodeId>(in);
        g.validate();
        return g;
    }
    GNNBENCH_CHECK(mode == CsrStorageMode::DeltaVarint,
                   "serialized CSR has unknown storage mode");
    const auto nnz = readPod<uint64_t>(in);
    g.indptr.resize(static_cast<size_t>(g.numRows) + 1);
    g.indices.reserve(nnz);
    g.indptr[0] = 0;
    for (NodeId r = 0; r < g.numRows; ++r) {
        const auto deg = readVarint(in);
        int64_t prev = static_cast<int64_t>(r);
        for (uint64_t k = 0; k < deg; ++k) {
            prev += zigzagDecode(readVarint(in));
            GNNBENCH_CHECK(prev >= 0 && prev < g.numCols,
                           "serialized CSR index out of range");
            g.indices.push_back(static_cast<NodeId>(prev));
        }
        g.indptr[r + 1] =
            g.indptr[r] + static_cast<EdgeId>(deg);
    }
    GNNBENCH_CHECK(g.indices.size() == nnz,
                   "serialized CSR nnz mismatch");
    g.validate();
    return g;
}

void
saveCsr(const graph::CsrGraph &g, const std::string &path,
        CsrStorageMode mode)
{
    std::ofstream out(path, std::ios::binary);
    GNNBENCH_CHECK(out.is_open(), "cannot open '", path,
                   "' for writing");
    writePod(out, kCsrMagic);
    writePod(out, kFormatVersion);
    writeCsr(out, g, mode);
    GNNBENCH_CHECK(out.good(), "write to '", path, "' failed");
}

graph::CsrGraph
loadCsr(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    GNNBENCH_CHECK(in.is_open(), "cannot open '", path,
                   "' for reading");
    GNNBENCH_CHECK(readPod<uint64_t>(in) == kCsrMagic, "'", path,
                   "' is not a gnnbench CSR file");
    GNNBENCH_CHECK(readPod<uint32_t>(in) == kFormatVersion,
                   "unsupported CSR format version in '", path, "'");
    return readCsr(in);
}

void
saveParams(const std::vector<core::ag::Var> &params,
           const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    GNNBENCH_CHECK(out.is_open(), "cannot open '", path,
                   "' for writing");
    writePod(out, kParamsMagic);
    writePod(out, kFormatVersion);
    writePod<uint64_t>(out, params.size());
    for (const auto &p : params)
        writeTensor(out, p->value);
    GNNBENCH_CHECK(out.good(), "write to '", path, "' failed");
}

void
loadParams(const std::vector<core::ag::Var> &params,
           const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    GNNBENCH_CHECK(in.is_open(), "cannot open '", path,
                   "' for reading");
    GNNBENCH_CHECK(readPod<uint64_t>(in) == kParamsMagic,
                   "'", path, "' is not a gnnbench parameter file");
    GNNBENCH_CHECK(readPod<uint32_t>(in) == kFormatVersion,
                   "unsupported parameter format version in '", path,
                   "'");
    const auto count = readPod<uint64_t>(in);
    GNNBENCH_CHECK(count == params.size(),
                   "parameter count mismatch: file has ", count,
                   ", model has ", params.size());
    for (const auto &p : params) {
        core::Tensor t = readTensor(in);
        GNNBENCH_CHECK(t.sameShape(p->value),
                       "parameter shape mismatch in '", path, "'");
        p->value = std::move(t);
    }
}

} // namespace io
} // namespace gnnbench
