#include "gnnbench/device/hierarchy.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "gnnbench/profiling/json_writer.h"
#include "gnnbench/profiling/metrics_registry.h"
#include "gnnbench/profiling/trace.h"

namespace gnnbench {
namespace device {

namespace detail {

bool
deviceOnOff(const char *name, const char *value, bool fallback)
{
    if (value == nullptr || *value == '\0')
        return fallback;
    if (std::strcmp(value, "on") == 0)
        return true;
    if (std::strcmp(value, "off") == 0)
        return false;
    GNNBENCH_CHECK(false, name, " must be one of on, off, got '",
                   value, "'");
    return fallback;
}

uint64_t
devicePositiveBytes(const char *name, const char *value,
                    uint64_t fallback)
{
    if (value == nullptr || *value == '\0')
        return fallback;
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(value, &end, 10);
    GNNBENCH_CHECK(end != value && *end == '\0' && errno == 0 &&
                       v > 0,
                   name, " must be a positive integer, got '", value,
                   "'");
    return static_cast<uint64_t>(v);
}

} // namespace detail

DeviceConfig
deviceConfigFromEnv()
{
    DeviceConfig cfg;
    cfg.fusionEnabled = detail::deviceOnOff(
        "GNNBENCH_DEVICE_FUSION",
        std::getenv("GNNBENCH_DEVICE_FUSION"), cfg.fusionEnabled);
    cfg.l2Bytes = detail::devicePositiveBytes(
        "GNNBENCH_DEVICE_L2_BYTES",
        std::getenv("GNNBENCH_DEVICE_L2_BYTES"), cfg.l2Bytes);
    cfg.tileBytes = detail::devicePositiveBytes(
        "GNNBENCH_DEVICE_TILE_BYTES",
        std::getenv("GNNBENCH_DEVICE_TILE_BYTES"), cfg.tileBytes);
    GNNBENCH_CHECK(cfg.tileBytes <= cfg.l2Bytes,
                   "GNNBENCH_DEVICE_TILE_BYTES (", cfg.tileBytes,
                   ") must not exceed GNNBENCH_DEVICE_L2_BYTES (",
                   cfg.l2Bytes, ")");
    return cfg;
}

namespace {

std::mutex g_config_mutex;
DeviceConfig g_config;
bool g_config_latched = false;

} // namespace

const DeviceConfig &
deviceConfig()
{
    std::lock_guard lock(g_config_mutex);
    if (!g_config_latched) {
        g_config = deviceConfigFromEnv();
        g_config_latched = true;
    }
    return g_config;
}

void
setDeviceConfig(const DeviceConfig &cfg)
{
    std::lock_guard lock(g_config_mutex);
    g_config = cfg;
    g_config_latched = true;
}

CacheTier::CacheTier(std::string name, uint64_t capacity_bytes,
                     uint64_t tile_bytes)
    : name_(std::move(name)), capacityBytes_(capacity_bytes),
      tileBytes_(tile_bytes)
{
    GNNBENCH_CHECK(tile_bytes > 0 && capacity_bytes >= tile_bytes,
                   "CacheTier ", name_,
                   ": capacity must hold at least one tile");
    capacityTiles_ = capacity_bytes / tile_bytes;
}

bool
CacheTier::access(uint64_t tile)
{
    auto it = map_.find(tile);
    if (it == map_.end()) {
        ++misses_;
        return false;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
}

void
CacheTier::insert(uint64_t tile)
{
    auto it = map_.find(tile);
    if (it != map_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    ++inserts_;
    lru_.push_front(tile);
    map_.emplace(tile, lru_.begin());
    while (lru_.size() > capacityTiles_) {
        map_.erase(lru_.back());
        lru_.pop_back();
        ++evictions_;
    }
}

bool
CacheTier::contains(uint64_t tile) const
{
    return map_.count(tile) != 0;
}

void
CacheTier::reset()
{
    lru_.clear();
    map_.clear();
    hits_ = misses_ = inserts_ = evictions_ = 0;
}

namespace {

// Registry metrics live for the process lifetime; references are
// cached once (the same pattern session.cc uses).
struct DeviceCounters
{
    profiling::Counter &l2Hits;
    profiling::Counter &l2Misses;
    profiling::Counter &l2Evictions;
    profiling::Counter &vramHits;
    profiling::Counter &vramMisses;
    profiling::Counter &vramEvictions;
    profiling::Counter &dmaTransfers;
    profiling::Counter &dmaBytes;
    profiling::Counter &uvaTxns;
    profiling::Counter &uvaBytes;
    profiling::Counter &preloadBytes;
    profiling::Counter &gatherRows;
};

DeviceCounters &
counters()
{
    auto &reg = profiling::MetricsRegistry::global();
    static DeviceCounters c{
        reg.counter("device.l2.hits"),
        reg.counter("device.l2.misses"),
        reg.counter("device.l2.evictions"),
        reg.counter("device.vram.hits"),
        reg.counter("device.vram.misses"),
        reg.counter("device.vram.evictions"),
        reg.counter("device.dma.transfers"),
        reg.counter("device.dma.bytes"),
        reg.counter("device.uva.transactions"),
        reg.counter("device.uva.bytes"),
        reg.counter("device.preload.bytes"),
        reg.counter("device.gather.rows"),
    };
    return c;
}

/**
 * Hands each hierarchy instance a trace-time origin at or after the
 * end of the previous instance's timeline (the PR 9 rank-lane
 * pattern), so several sessions in one process never interleave
 * their synthetic lane events backwards.
 */
std::mutex g_origin_mutex;
double g_next_origin = 0.0;

double
claimTraceOrigin()
{
    std::lock_guard lock(g_origin_mutex);
    const auto &rec = profiling::TraceRecorder::global();
    double origin = g_next_origin;
    if (rec.enabled())
        origin = std::max(origin, rec.now());
    g_next_origin = origin;
    return origin;
}

void
publishTraceEnd(double end)
{
    std::lock_guard lock(g_origin_mutex);
    g_next_origin = std::max(g_next_origin, end);
}

} // namespace

HierarchySpec
MemoryHierarchy::specFromConfig()
{
    const DeviceConfig &cfg = deviceConfig();
    HierarchySpec spec;
    spec.l2Bytes = cfg.l2Bytes;
    spec.tileBytes = cfg.tileBytes;
    // Keep the controller's saturated-stream identity (one tile per
    // transaction at tile/24e9) under a tile-size override.
    spec.controllerOverheadSeconds =
        static_cast<double>(cfg.tileBytes) / spec.dramBandwidth;
    return spec;
}

MemoryHierarchy::MemoryHierarchy(const HierarchySpec &spec)
    : spec_(spec), l2_("l2", spec.l2Bytes, spec.tileBytes),
      vram_("vram", spec.vramBytes, spec.tileBytes)
{
    GNNBENCH_CHECK(spec_.dramBandwidth > 0.0 &&
                       spec_.dmaBandwidth > 0.0 &&
                       spec_.l2Bandwidth > 0.0 &&
                       spec_.vramBandwidth > 0.0 &&
                       spec_.gatherEfficiency > 0.0,
                   "MemoryHierarchy: invalid stage constants");
    traceOrigin_ = claimTraceOrigin();
}

MemoryHierarchy::~MemoryHierarchy()
{
    publishTraceEnd(traceOrigin_ + clock_);
}

void
MemoryHierarchy::traceOp(const char *name, const StageTimes &t,
                         double total)
{
    if (total <= 0.0)
        return;
    auto &rec = profiling::TraceRecorder::global();
    if (rec.enabled()) {
        const std::pair<const char *, double> stages[] = {
            {kDramLane, t.dram}, {kCtrlLane, t.ctrl},
            {kDmaLane, t.dma},   {kL2Lane, t.l2},
            {kVramLane, t.vram},
        };
        for (const auto &[lane, dur] : stages)
            if (dur > 0.0)
                rec.recordSynthetic(lane, name, "device",
                                    traceOrigin_ + clock_, dur);
    }
    clock_ += total;
}

uint64_t
MemoryHierarchy::defaultTxns(uint64_t bytes) const
{
    return (bytes + spec_.tileBytes - 1) / spec_.tileBytes;
}

double
MemoryHierarchy::dmaTransfer(uint64_t bytes, const char *what)
{
    const double b = static_cast<double>(bytes);
    StageTimes t;
    t.dram = b / spec_.dramBandwidth;
    t.ctrl = static_cast<double>(defaultTxns(bytes)) *
             spec_.controllerOverheadSeconds;
    t.dma = spec_.dmaSetupSeconds + b / spec_.dmaBandwidth;
    // The DMA engine is the bottleneck stage; DRAM and the controller
    // stream into it faster than it drains, so they pipeline behind
    // it and the descriptor setup covers the pipeline fill.
    const double total = t.dma;
    counters().dmaTransfers.add(1);
    counters().dmaBytes.add(bytes);
    traceOp(what, t, total);
    return total;
}

double
MemoryHierarchy::uvaRead(uint64_t bytes, uint64_t txns)
{
    txns = std::max<uint64_t>(txns, 1);
    const double b = static_cast<double>(bytes);
    StageTimes t;
    t.dram = b / spec_.dramBandwidth;
    t.ctrl = static_cast<double>(txns) *
             spec_.controllerOverheadSeconds;
    t.dma = b / spec_.dmaBandwidth;
    // Zero-copy reads have no DMA descriptor to hide behind: every
    // transaction pays the controller round trip on top of the link
    // drain, which is why UVA is slower per byte than a bulk copy.
    const double total = t.dma + t.ctrl;
    counters().uvaTxns.add(txns);
    counters().uvaBytes.add(bytes);
    traceOp("uva:read", t, total);
    return total;
}

FeatureRegion
MemoryHierarchy::registerRegion(int64_t rows, int64_t row_bytes)
{
    GNNBENCH_ASSERT(rows >= 0 && row_bytes > 0,
                    "registerRegion: bad shape");
    FeatureRegion r;
    r.id = nextRegionId_++;
    r.rows = rows;
    r.rowBytes = row_bytes;
    r.baseTile = nextTile_;
    r.numTiles = (r.bytes() + spec_.tileBytes - 1) / spec_.tileBytes;
    nextTile_ += r.numTiles;
    return r;
}

double
MemoryHierarchy::preloadRegion(const FeatureRegion &region)
{
    GNNBENCH_ASSERT(region.valid(), "preloadRegion: unregistered");
    const double t = dmaTransfer(region.bytes(), "dma:preload");
    for (uint64_t tl = region.baseTile;
         tl < region.baseTile + region.numTiles; ++tl)
        vram_.insert(tl);
    counters().preloadBytes.add(region.bytes());
    return t;
}

MemoryHierarchy::GatherCost
MemoryHierarchy::gatherRead(const FeatureRegion &region,
                            const std::vector<NodeId> &rows,
                            Placement placement)
{
    GNNBENCH_ASSERT(region.valid(), "gatherRead: unregistered");
    const uint64_t tile = spec_.tileBytes;
    const double tile_b = static_cast<double>(tile);
    StageTimes t;
    uint64_t uva_bytes = 0, uva_txns = 0, dma_bytes = 0;
    uint64_t l2_hits = 0, l2_misses = 0;
    uint64_t vram_hits = 0, vram_misses = 0;
    const uint64_t l2_evict0 = l2_.evictions();
    const uint64_t vram_evict0 = vram_.evictions();

    for (const NodeId v : rows) {
        GNNBENCH_ASSERT(v >= 0 &&
                            static_cast<int64_t>(v) < region.rows,
                        "gatherRead: row out of region");
        const uint64_t off =
            static_cast<uint64_t>(v) *
            static_cast<uint64_t>(region.rowBytes);
        const uint64_t first = region.baseTile + off / tile;
        const uint64_t last =
            region.baseTile +
            (off + static_cast<uint64_t>(region.rowBytes) - 1) / tile;
        for (uint64_t tl = first; tl <= last; ++tl) {
            if (l2_.access(tl)) {
                ++l2_hits;
                t.l2 += tile_b / spec_.l2Bandwidth;
                continue;
            }
            ++l2_misses;
            if (placement == Placement::Device) {
                if (vram_.access(tl)) {
                    ++vram_hits;
                    t.vram += tile_b / (spec_.vramBandwidth *
                                        spec_.gatherEfficiency);
                } else {
                    // Demand page: the tile crosses the link once,
                    // then lives in VRAM.
                    ++vram_misses;
                    dma_bytes += tile;
                    vram_.insert(tl);
                }
            } else {
                // Zero-copy: the tile stays in host DRAM; one link
                // transaction per miss, VRAM is never populated.
                uva_bytes += tile;
                ++uva_txns;
            }
            l2_.insert(tl);
        }
    }
    // Packed output write into VRAM at gather efficiency.
    const double out_bytes = static_cast<double>(rows.size()) *
                             static_cast<double>(region.rowBytes);
    t.vram +=
        out_bytes / (spec_.vramBandwidth * spec_.gatherEfficiency);

    GatherCost c;
    c.uvaBytes = uva_bytes;
    if (uva_txns > 0) {
        const double b = static_cast<double>(uva_bytes);
        t.dram += b / spec_.dramBandwidth;
        t.ctrl += static_cast<double>(uva_txns) *
                  spec_.controllerOverheadSeconds;
        t.dma += b / spec_.dmaBandwidth;
        c.gpuSeconds += b / spec_.dmaBandwidth +
                        static_cast<double>(uva_txns) *
                            spec_.controllerOverheadSeconds;
    }
    if (dma_bytes > 0) {
        const double b = static_cast<double>(dma_bytes);
        t.dram += b / spec_.dramBandwidth;
        t.ctrl += static_cast<double>(vram_misses) *
                  spec_.controllerOverheadSeconds;
        t.dma += b / spec_.dmaBandwidth;
        c.xferSeconds += b / spec_.dmaBandwidth +
                         static_cast<double>(vram_misses) *
                             spec_.controllerOverheadSeconds;
        counters().dmaBytes.add(dma_bytes);
    }
    c.gpuSeconds += t.l2 + t.vram;

    auto &cnt = counters();
    cnt.l2Hits.add(l2_hits);
    cnt.l2Misses.add(l2_misses);
    cnt.l2Evictions.add(l2_.evictions() - l2_evict0);
    cnt.vramHits.add(vram_hits);
    cnt.vramMisses.add(vram_misses);
    cnt.vramEvictions.add(vram_.evictions() - vram_evict0);
    cnt.gatherRows.add(rows.size());
    if (uva_txns > 0) {
        cnt.uvaTxns.add(uva_txns);
        cnt.uvaBytes.add(uva_bytes);
    }

    traceOp(placement == Placement::Device ? "gather:dev"
                                           : "gather:uva",
            t, c.gpuSeconds + c.xferSeconds);
    return c;
}

void
writeDeviceJson(profiling::JsonWriter &w, const std::string &key)
{
    const DeviceConfig &cfg = deviceConfig();
    auto &reg = profiling::MetricsRegistry::global();
    auto cv = [&reg](const char *name) {
        return reg.counter(name).value();
    };
    w.beginObject(key);
    w.value("tile_bytes", cfg.tileBytes);
    w.beginObject("fusion");
    w.value("enabled", cfg.fusionEnabled);
    w.value("fused_pairs", cv("device.fusion.fused_pairs"));
    w.value("fused_bytes_saved",
            cv("device.fusion.fused_bytes_saved"));
    w.value("rejected_pairs", cv("device.fusion.rejected_pairs"));
    w.endObject();
    w.beginObject("tiers");
    w.beginObject("l2");
    w.value("capacity_bytes", cfg.l2Bytes);
    w.value("hits", cv("device.l2.hits"));
    w.value("misses", cv("device.l2.misses"));
    w.value("evictions", cv("device.l2.evictions"));
    w.endObject();
    w.beginObject("vram");
    w.value("capacity_bytes", HierarchySpec{}.vramBytes);
    w.value("hits", cv("device.vram.hits"));
    w.value("misses", cv("device.vram.misses"));
    w.value("evictions", cv("device.vram.evictions"));
    w.endObject();
    w.endObject();
    w.beginObject("dma");
    w.value("transfers", cv("device.dma.transfers"));
    w.value("bytes", cv("device.dma.bytes"));
    w.endObject();
    w.beginObject("uva");
    w.value("transactions", cv("device.uva.transactions"));
    w.value("bytes", cv("device.uva.bytes"));
    w.endObject();
    w.value("kernel_bytes", cv("device.kernel.bytes"));
    w.value("preload_bytes", cv("device.preload.bytes"));
    w.value("gather_rows", cv("device.gather.rows"));
    w.endObject();
}

} // namespace device
} // namespace gnnbench
