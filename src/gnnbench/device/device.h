/**
 * @file
 * Modeled hardware devices.
 *
 * The paper's testbed pairs dual Xeon Silver 4114 CPUs with an NVIDIA
 * Quadro RTX 8000.  Offline we execute every kernel on the host CPU
 * for numerical correctness, but *account* GPU kernel time with an
 * analytical roofline model and data movement with a PCIe/UVA
 * transfer model.  All constants live in GpuSpec/CpuSpec with their
 * datasheet sources documented, so the model is auditable and easy to
 * retarget.
 */

#ifndef GNNBENCH_DEVICE_DEVICE_H
#define GNNBENCH_DEVICE_DEVICE_H

#include <cstdint>
#include <string>

#include "gnnbench/core/common.h"

namespace gnnbench {
namespace device {

/** Where a kernel logically executes. */
enum class DeviceType { CPU, GPU };

/** Printable device name. */
const char *deviceName(DeviceType dev);

/**
 * Modeled GPU: NVIDIA Quadro RTX 8000.
 *
 * Sources: NVIDIA datasheet (16.3 TFLOP/s FP32 peak, 672 GB/s GDDR6,
 * 48 GB memory); PCIe 3.0 x16 sustains ~12 GB/s effective; pinned
 * zero-copy (UVA) access over PCIe sustains ~70% of that in practice.
 */
struct GpuSpec
{
    double flopsPeak = 16.3e12;        ///< FP32 FLOP/s
    double memBandwidth = 672e9;       ///< bytes/s, device memory
    double kernelLaunchLatency = 8e-6; ///< s, per kernel launch
    double pcieBandwidth = 12e9;       ///< bytes/s, H2D/D2H copies
    double pcieLatency = 10e-6;        ///< s, per transfer
    double uvaBandwidth = 8e9;         ///< bytes/s, zero-copy access
    uint64_t memoryBytes = 48ull << 30;
};

/**
 * Modeled host: dual Intel Xeon Silver 4114 (the paper's server).
 * Host kernels run for real, so only capacity matters here.
 */
struct CpuSpec
{
    uint64_t memoryBytes = 64ull << 30;
};

/**
 * A kernel's cost signature for the GPU roofline model.  flops and
 * bytes describe the *algorithmic* work; efficiency scales the
 * achievable peak (sparse, irregular kernels achieve a fraction of
 * peak bandwidth; dense GEMM runs near peak).
 */
struct KernelDesc
{
    const char *name = "kernel";
    double flops = 0.0;
    double bytes = 0.0;
    double efficiency = 1.0;
    /** Extra per-call framework overhead charged on the device. */
    double frameworkOverhead = 0.0;
    /**
     * Power-utilization override in [0, 1]; negative derives it from
     * the roofline.  Irregular kernels (e.g. GPU graph sampling on
     * high-degree graphs) keep the chip far busier than their
     * achieved bandwidth suggests — set this explicitly for them.
     */
    double utilization = -1.0;
};

/** Analytical GPU timing/utilization model. */
class GpuModel
{
  public:
    explicit GpuModel(const GpuSpec &spec) : spec_(spec) {}

    /** Modeled execution time of one kernel, in seconds. */
    double kernelTime(const KernelDesc &desc) const;

    /**
     * Activity proxy in [0, 1] for the power model: how much of the
     * chip (compute + memory system) the kernel keeps busy.
     */
    double kernelUtilization(const KernelDesc &desc) const;

    /** Modeled host-to-device (or back) copy time over PCIe. */
    double transferTime(uint64_t bytes) const;

    /** Modeled zero-copy (UVA) access time for the given bytes. */
    double uvaAccessTime(uint64_t bytes) const;

    const GpuSpec &spec() const { return spec_; }

  private:
    GpuSpec spec_;
};

} // namespace device
} // namespace gnnbench

#endif // GNNBENCH_DEVICE_DEVICE_H
