#include "gnnbench/device/session.h"

#include <algorithm>

#include "gnnbench/profiling/metrics_registry.h"

namespace gnnbench {
namespace device {

namespace {

// Registry metrics live for the process lifetime, so the references
// can be cached; lookup happens once per metric.
profiling::Counter &
h2dBytesCounter()
{
    static profiling::Counter &c =
        profiling::MetricsRegistry::global().counter("xfer.h2d_bytes");
    return c;
}

profiling::Counter &
uvaBytesCounter()
{
    static profiling::Counter &c =
        profiling::MetricsRegistry::global().counter("xfer.uva_bytes");
    return c;
}

profiling::Gauge &
gpuReservedPeakGauge()
{
    static profiling::Gauge &g =
        profiling::MetricsRegistry::global().gauge(
            "gpu.reserved_bytes_peak");
    return g;
}

} // namespace

Session::Session(const GpuSpec &gpu_spec, const CpuSpec &cpu_spec)
    : gpuModel_(gpu_spec), cpuSpec_(cpu_spec)
{
}

Session::Snapshot
Session::snapshot() const
{
    Snapshot s;
    s.wall = clock_.elapsed();
    s.excludedWall = excludedWall_;
    s.modeled = modeled_;
    return s;
}

void
Session::chargeGpuKernel(const KernelDesc &desc)
{
    const double t = gpuModel_.kernelTime(desc);
    modeled_.gpuSeconds += t;
    modeled_.gpuUtilSeconds += t * gpuModel_.kernelUtilization(desc);
    static profiling::Counter &kernel_bytes =
        profiling::MetricsRegistry::global().counter(
            "device.kernel.bytes");
    kernel_bytes.add(desc.bytes);
}

void
Session::transfer(uint64_t bytes)
{
    modeled_.xferSeconds += hier_.dmaTransfer(bytes);
    h2dBytesCounter().add(bytes);
}

void
Session::transferOverlapped(uint64_t bytes, double overlap_seconds)
{
    GNNBENCH_ASSERT(overlap_seconds >= 0.0, "negative overlap");
    const double t = hier_.dmaTransfer(bytes, "h2d:overlapped");
    modeled_.xferSeconds += std::max(0.0, t - overlap_seconds);
    h2dBytesCounter().add(bytes);
}

void
Session::uvaAccess(uint64_t bytes)
{
    uvaAccess(bytes, hier_.defaultTxns(bytes));
}

void
Session::uvaAccess(uint64_t bytes, uint64_t txns)
{
    // UVA reads stall the GPU-side consumer, so they are accounted as
    // GPU time at low utilization (the SMs mostly wait on PCIe).
    const double t = hier_.uvaRead(bytes, txns);
    modeled_.gpuSeconds += t;
    modeled_.gpuUtilSeconds += t * 0.15;
    uvaBytesCounter().add(bytes);
}

FeatureRegion
Session::registerRegion(int64_t rows, int64_t row_bytes)
{
    return hier_.registerRegion(rows, row_bytes);
}

void
Session::preloadRegion(const FeatureRegion &region)
{
    modeled_.xferSeconds += hier_.preloadRegion(region);
    h2dBytesCounter().add(region.bytes());
}

void
Session::gatherFromRegion(const FeatureRegion &region,
                          const std::vector<NodeId> &rows,
                          Placement placement)
{
    const MemoryHierarchy::GatherCost c =
        hier_.gatherRead(region, rows, placement);
    const double t =
        gpuModel_.spec().kernelLaunchLatency + c.gpuSeconds;
    modeled_.gpuSeconds += t;
    // A gather out of VRAM keeps the SMs moderately busy; a zero-copy
    // gather leaves them mostly waiting on the link.
    modeled_.gpuUtilSeconds +=
        t * (placement == Placement::Device ? 0.40 : 0.15);
    modeled_.xferSeconds += c.xferSeconds;
    if (c.uvaBytes > 0)
        uvaBytesCounter().add(c.uvaBytes);
}

void
Session::chargeCpuOverhead(double seconds)
{
    GNNBENCH_ASSERT(seconds >= 0.0, "negative overhead charge");
    modeled_.cpuOverheadSeconds += seconds;
}

void
Session::excludeWall(double seconds)
{
    GNNBENCH_ASSERT(seconds >= 0.0, "negative wall exclusion");
    excludedWall_ += seconds;
}

bool
Session::fitsOnGpu(uint64_t bytes) const
{
    return gpuBytesUsed_ + bytes <= gpuModel_.spec().memoryBytes;
}

bool
Session::reserveGpu(uint64_t bytes)
{
    if (!fitsOnGpu(bytes))
        return false;
    gpuBytesUsed_ += bytes;
    gpuReservedPeakGauge().updateMax(
        static_cast<double>(gpuBytesUsed_));
    return true;
}

void
Session::releaseGpu(uint64_t bytes)
{
    GNNBENCH_ASSERT(bytes <= gpuBytesUsed_, "GPU memory underflow");
    gpuBytesUsed_ -= bytes;
}

double
Session::virtualSeconds(const Snapshot &a, const Snapshot &b)
{
    const double wall = (b.wall - a.wall) -
                        (b.excludedWall - a.excludedWall);
    const double modeled =
        (b.modeled.gpuSeconds - a.modeled.gpuSeconds) +
        (b.modeled.xferSeconds - a.modeled.xferSeconds) +
        (b.modeled.cpuOverheadSeconds - a.modeled.cpuOverheadSeconds);
    return wall + modeled;
}

} // namespace device
} // namespace gnnbench
