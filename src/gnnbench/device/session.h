/**
 * @file
 * The single time-and-memory authority of a benchmark run.
 *
 * Every timed region in gnnbench is accounted through a Session:
 *  - host (CPU) kernels run for real; their wall time counts as CPU
 *    busy time;
 *  - "GPU" kernels also run on the host for numerical correctness,
 *    but their wall time is *excluded* and replaced by the modeled
 *    roofline time (see device.h);
 *  - PCIe transfers and UVA accesses are charged from the transfer
 *    model;
 *  - modeled overheads (e.g. the pygx interpreter-cost model) are
 *    charged explicitly.
 *
 * A profiler scope computes its *virtual* duration from two Session
 * snapshots: (wall elapsed - excluded wall) + modeled GPU time +
 * modeled transfer time + modeled overhead.  This is the time every
 * figure in the reproduction reports.
 */

#ifndef GNNBENCH_DEVICE_SESSION_H
#define GNNBENCH_DEVICE_SESSION_H

#include <utility>
#include <vector>

#include "gnnbench/core/timer.h"
#include "gnnbench/device/device.h"
#include "gnnbench/device/hierarchy.h"

namespace gnnbench {
namespace device {

/** Accumulated modeled-time categories, all in seconds. */
struct ModeledTotals
{
    double gpuSeconds = 0.0;      ///< modeled GPU kernel time
    double gpuUtilSeconds = 0.0;  ///< ∫ utilization dt, for power
    double xferSeconds = 0.0;     ///< modeled PCIe/UVA transfer time
    double cpuOverheadSeconds = 0.0; ///< modeled CPU-side overhead
};

/** Central accounting object; one per benchmark run. */
class Session
{
  public:
    explicit Session(const GpuSpec &gpu_spec = GpuSpec{},
                     const CpuSpec &cpu_spec = CpuSpec{});

    /** A point-in-time view of all accounting counters. */
    struct Snapshot
    {
        double wall = 0.0;
        double excludedWall = 0.0;
        ModeledTotals modeled;
    };

    /** Capture the current counters. */
    Snapshot snapshot() const;

    /**
     * Execute @p fn as a kernel on @p dev.  On CPU the call simply
     * runs (wall time counts).  On GPU the wall time is excluded and
     * the modeled kernel time is charged instead.
     */
    template <typename F>
    void
    runKernel(DeviceType dev, const KernelDesc &desc, F &&fn)
    {
        if (dev == DeviceType::CPU) {
            std::forward<F>(fn)();
            return;
        }
        core::Timer t;
        std::forward<F>(fn)();
        excludeWall(t.elapsed());
        chargeGpuKernel(desc);
    }

    /** Charge a modeled GPU kernel without running anything. */
    void chargeGpuKernel(const KernelDesc &desc);

    /** Charge a modeled host<->device PCIe copy. */
    void transfer(uint64_t bytes);

    /**
     * Charge a PCIe copy of which up to @p overlap_seconds is hidden
     * behind concurrent compute (DGL's asynchronous pre-fetching).
     */
    void transferOverlapped(uint64_t bytes, double overlap_seconds);

    /** Charge a modeled zero-copy (UVA) access from the GPU, split
     *  into tile-granular transactions. */
    void uvaAccess(uint64_t bytes);

    /** Charge a modeled zero-copy (UVA) access of @p txns discrete
     *  transactions (e.g. one per gathered row). */
    void uvaAccess(uint64_t bytes, uint64_t txns);

    /// @name Memory-hierarchy feature placement
    /// @{
    /** Register a row-addressable feature array with the hierarchy. */
    FeatureRegion registerRegion(int64_t rows, int64_t row_bytes);

    /** Stream a region into the VRAM tier (charged as transfer). */
    void preloadRegion(const FeatureRegion &region);

    /**
     * Charge a modeled row gather from @p region through the cache
     * tiers.  Placement::Device reads VRAM (demand-paging misses over
     * the DMA engine); Placement::Host reads zero-copy.
     */
    void gatherFromRegion(const FeatureRegion &region,
                          const std::vector<NodeId> &rows,
                          Placement placement);
    /// @}

    /** Charge modeled CPU-side overhead (e.g. interpreter cost). */
    void chargeCpuOverhead(double seconds);

    /** Exclude already-elapsed wall time from virtual accounting. */
    void excludeWall(double seconds);

    /// @name GPU memory tracking (for OOM behaviour and pre-loading)
    /// @{
    /** Bytes of GPU memory currently reserved. */
    uint64_t gpuBytesUsed() const { return gpuBytesUsed_; }

    /** Whether an allocation of @p bytes more would fit. */
    bool fitsOnGpu(uint64_t bytes) const;

    /**
     * Reserve GPU memory; returns false (and reserves nothing) when
     * the allocation would exceed device memory.
     */
    bool reserveGpu(uint64_t bytes);

    /** Release previously reserved GPU memory. */
    void releaseGpu(uint64_t bytes);
    /// @}

    const GpuModel &gpu() const { return gpuModel_; }
    const CpuSpec &cpuSpec() const { return cpuSpec_; }
    const MemoryHierarchy &hierarchy() const { return hier_; }

    /**
     * Virtual seconds between two snapshots:
     * (wall - excluded) + modeled gpu + transfer + cpu overhead.
     */
    static double virtualSeconds(const Snapshot &a, const Snapshot &b);

  private:
    GpuModel gpuModel_;
    CpuSpec cpuSpec_;
    MemoryHierarchy hier_;
    core::Timer clock_;
    double excludedWall_ = 0.0;
    ModeledTotals modeled_;
    uint64_t gpuBytesUsed_ = 0;
};

} // namespace device
} // namespace gnnbench

#endif // GNNBENCH_DEVICE_SESSION_H
