/**
 * @file
 * The pipelined memory hierarchy behind the device model.
 *
 * Every modeled byte that moves between the host and the device flows
 * through four pipelined stages — host DRAM channel → memory
 * controller → DMA engine → on-device cache tiers (L2 over VRAM) —
 * instead of being charged against a flat bandwidth constant.  A
 * transfer's modeled time is the time of its bottleneck stage (the
 * upstream stages stream into the DMA engine faster than it drains,
 * so they pipeline behind it); each stage's busy time is still
 * exported on its own synthetic trace lane ("device/<stage>
 * (modeled)") so Perfetto shows where a transfer actually spent its
 * bytes.
 *
 * On-device reuse is tracked at tile granularity: the L2 and VRAM
 * tiers are LRU caches with byte budgets and exact
 * hit/miss/eviction accounting (counters under "device.*").  Feature
 * placement policies fall out of the tiers:
 *  - *pre-loading* populates the VRAM tier once over the DMA engine,
 *    after which gathers hit VRAM (and, with reuse, L2);
 *  - *UVA / zero-copy* leaves the tiles in host DRAM, so every L2
 *    miss becomes a per-tile transaction across the link, paying the
 *    memory-controller overhead each time — which is exactly why UVA
 *    is slower per byte than a bulk DMA copy.
 *
 * The default constants are calibrated so that bulk transfers and
 * tile-granular UVA streams reproduce the former flat model exactly
 * (12 GB/s DMA; 1/12e9 + 1/24e9 = 1/8e9 s/byte for UVA), keeping
 * every figure of the reproduction stable; see docs/modeling.md.
 */

#ifndef GNNBENCH_DEVICE_HIERARCHY_H
#define GNNBENCH_DEVICE_HIERARCHY_H

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "gnnbench/core/common.h"

namespace gnnbench {

namespace profiling {
class JsonWriter;
class Counter;
} // namespace profiling

namespace device {

/**
 * Runtime configuration of the hierarchy, latched from the
 * GNNBENCH_DEVICE_* environment once per process:
 *  - GNNBENCH_DEVICE_FUSION     on|off   kernel fusion (default on)
 *  - GNNBENCH_DEVICE_L2_BYTES   positive integer, on-device L2 bytes
 *  - GNNBENCH_DEVICE_TILE_BYTES positive integer, cache-tile bytes
 * Unknown values are fatal at first read (same eager-validation
 * contract as the GNNBENCH_SERVE_* knobs).
 */
struct DeviceConfig
{
    bool fusionEnabled = true;
    uint64_t l2Bytes = 6ull << 20;
    uint64_t tileBytes = 4096;
};

/** Parse the GNNBENCH_DEVICE_* environment (fatal on bad values). */
DeviceConfig deviceConfigFromEnv();

/** The process config, read from the environment on first call and
 *  latched.  Benches call this eagerly from parseOptions so a bad
 *  knob dies at startup with a clear message. */
const DeviceConfig &deviceConfig();

/** Override the latched config (tests; also marks it latched). */
void setDeviceConfig(const DeviceConfig &cfg);

namespace detail {

/** Parse an on/off env value; fatal listing the valid values. */
bool deviceOnOff(const char *name, const char *value, bool fallback);

/** Parse a positive byte-count env value; fatal on anything else. */
uint64_t devicePositiveBytes(const char *name, const char *value,
                             uint64_t fallback);

} // namespace detail

/** Stage timing constants of the modeled hierarchy. */
struct HierarchySpec
{
    /** Host DRAM channel feeding the controller (one channel). */
    double dramBandwidth = 24e9;
    /** Memory-controller service time per outstanding transaction
     *  (one tile): chosen so a saturated tile stream adds exactly
     *  tile/24e9 per transaction. */
    double controllerOverheadSeconds = 4096.0 / 24e9;
    /** DMA descriptor setup (covers the pipeline fill of the
     *  upstream stages; equals the former flat PCIe latency). */
    double dmaSetupSeconds = 10e-6;
    /** DMA engine drain rate (the former flat PCIe bandwidth). */
    double dmaBandwidth = 12e9;
    /** Cache-tile granularity of the on-device tiers. */
    uint64_t tileBytes = 4096;
    /** On-device L2 byte budget. */
    uint64_t l2Bytes = 6ull << 20;
    /** L2 service bandwidth for a hit. */
    double l2Bandwidth = 2000e9;
    /** VRAM byte budget (the device memory size). */
    uint64_t vramBytes = 48ull * 1024 * 1024 * 1024;
    /** VRAM bandwidth at full efficiency. */
    double vramBandwidth = 672e9;
    /** Achieved fraction of VRAM bandwidth for irregular row
     *  gathers (the former feature_gather efficiency). */
    double gatherEfficiency = 0.3;
};

/**
 * One LRU cache tier over fixed-size tiles, with exact accounting:
 *  - hits() + misses() == accesses()         (every access counted)
 *  - evictions() == inserts() - residentTiles() (no tile vanishes)
 *  - bytesUsed() <= capacityBytes()          (budget never exceeded)
 * access() never inserts; the caller decides what a miss fetches and
 * then insert()s, which keeps demand-fill and prefetch policies in
 * the hierarchy rather than in the tier.
 */
class CacheTier
{
  public:
    CacheTier(std::string name, uint64_t capacity_bytes,
              uint64_t tile_bytes);

    /** Touch @p tile: true on hit (promoted to MRU). */
    bool access(uint64_t tile);

    /** Make @p tile resident, evicting LRU tiles over budget; a
     *  re-insert of a resident tile only promotes it. */
    void insert(uint64_t tile);

    bool contains(uint64_t tile) const;

    /** Drop all tiles and zero the counters. */
    void reset();

    const std::string &name() const { return name_; }
    uint64_t capacityBytes() const { return capacityBytes_; }
    uint64_t tileBytes() const { return tileBytes_; }
    uint64_t capacityTiles() const { return capacityTiles_; }
    uint64_t residentTiles() const
    {
        return static_cast<uint64_t>(lru_.size());
    }
    uint64_t bytesUsed() const { return residentTiles() * tileBytes_; }

    uint64_t accesses() const { return hits_ + misses_; }
    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    uint64_t inserts() const { return inserts_; }
    uint64_t evictions() const { return evictions_; }

  private:
    std::string name_;
    uint64_t capacityBytes_;
    uint64_t tileBytes_;
    uint64_t capacityTiles_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t inserts_ = 0;
    uint64_t evictions_ = 0;
    /** MRU at the front. */
    std::list<uint64_t> lru_;
    std::unordered_map<uint64_t, std::list<uint64_t>::iterator> map_;
};

/** Where a registered feature region's backing rows live. */
enum class Placement
{
    Device, ///< pre-loaded: tiles resident in the VRAM tier
    Host,   ///< pinned host memory, read zero-copy (UVA)
};

/**
 * A registered row-addressable array (a feature matrix) with its own
 * tile-id range in the hierarchy's namespace.
 */
struct FeatureRegion
{
    int id = -1;
    int64_t rows = 0;
    int64_t rowBytes = 0;
    uint64_t baseTile = 0;
    uint64_t numTiles = 0;

    bool valid() const { return id >= 0; }
    uint64_t bytes() const
    {
        return static_cast<uint64_t>(rows) *
               static_cast<uint64_t>(rowBytes);
    }
};

/**
 * The pipelined hierarchy model.  One instance per device::Session;
 * all methods return modeled seconds and leave the caller (the
 * Session) to decide which accounting bucket the time lands in.
 * Instances chain their synthetic trace timelines through a shared
 * origin (the PR 9 rank-lane pattern), so several sessions in one
 * process never interleave lane events backwards.
 */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const HierarchySpec &spec = specFromConfig());
    ~MemoryHierarchy();

    MemoryHierarchy(const MemoryHierarchy &) = delete;
    MemoryHierarchy &operator=(const MemoryHierarchy &) = delete;

    /** The default spec with the DeviceConfig knobs applied. */
    static HierarchySpec specFromConfig();

    /** Modeled seconds of one bulk host→device DMA transfer
     *  (descriptor setup + DMA-stage drain; DRAM and controller
     *  pipeline behind it). */
    double dmaTransfer(uint64_t bytes, const char *what = "h2d");

    /** Modeled seconds of @p txns zero-copy reads totalling
     *  @p bytes: the link drain plus one controller round trip per
     *  transaction (nothing hides it — that is the UVA tax). */
    double uvaRead(uint64_t bytes, uint64_t txns);

    /** Transactions a @p bytes zero-copy stream splits into at tile
     *  granularity. */
    uint64_t defaultTxns(uint64_t bytes) const;

    /** Register @p rows x @p row_bytes of gatherable data; assigns a
     *  fresh tile-id range. */
    FeatureRegion registerRegion(int64_t rows, int64_t row_bytes);

    /** Stream a region into the VRAM tier over the DMA engine;
     *  returns the modeled transfer seconds. */
    double preloadRegion(const FeatureRegion &region);

    /** Cost split of one gather, for the Session to bucket. */
    struct GatherCost
    {
        double gpuSeconds = 0.0;  ///< on-device + zero-copy read time
        double xferSeconds = 0.0; ///< demand-page DMA time
        uint64_t uvaBytes = 0;    ///< bytes that crossed zero-copy
    };

    /**
     * Walk the tiers for a row gather out of @p region: every row's
     * tiles probe L2; misses fall through to VRAM (Placement::Device)
     * or cross the link zero-copy (Placement::Host), then fill L2.
     * The packed output write lands in VRAM at gather efficiency.
     */
    GatherCost gatherRead(const FeatureRegion &region,
                          const std::vector<NodeId> &rows,
                          Placement placement);

    const CacheTier &l2() const { return l2_; }
    const CacheTier &vram() const { return vram_; }
    const HierarchySpec &spec() const { return spec_; }

    /// @name Synthetic per-tier trace lanes
    /// @{
    static constexpr const char *kDramLane = "device/dram (modeled)";
    static constexpr const char *kCtrlLane = "device/ctrl (modeled)";
    static constexpr const char *kDmaLane = "device/dma (modeled)";
    static constexpr const char *kL2Lane = "device/l2 (modeled)";
    static constexpr const char *kVramLane = "device/vram (modeled)";
    /// @}

  private:
    /** Per-stage busy seconds of one hierarchy operation. */
    struct StageTimes
    {
        double dram = 0.0;
        double ctrl = 0.0;
        double dma = 0.0;
        double l2 = 0.0;
        double vram = 0.0;
    };

    /** Emit one lane event per busy stage, all starting at the
     *  hierarchy clock, then advance the clock by @p total (every
     *  stage duration is <= total, so lanes stay monotonic). */
    void traceOp(const char *name, const StageTimes &t, double total);

    HierarchySpec spec_;
    CacheTier l2_;
    CacheTier vram_;
    int nextRegionId_ = 0;
    uint64_t nextTile_ = 0;
    double traceOrigin_ = 0.0;
    double clock_ = 0.0;
};

/**
 * Emit the "device" section of the unified run report as the value
 * of @p key: fusion counters, per-tier hit/miss/evict totals and
 * budgets, and the DMA/UVA byte streams — all from the process-wide
 * metrics registry plus the latched DeviceConfig.
 */
void writeDeviceJson(profiling::JsonWriter &w, const std::string &key);

} // namespace device
} // namespace gnnbench

#endif // GNNBENCH_DEVICE_HIERARCHY_H
