#include "gnnbench/device/device.h"

#include <algorithm>

namespace gnnbench {
namespace device {

const char *
deviceName(DeviceType dev)
{
    return dev == DeviceType::CPU ? "cpu" : "gpu";
}

double
GpuModel::kernelTime(const KernelDesc &desc) const
{
    GNNBENCH_ASSERT(desc.efficiency > 0.0 && desc.efficiency <= 1.0,
                    "kernel efficiency out of range");
    const double compute =
        desc.flops / (spec_.flopsPeak * desc.efficiency);
    const double memory =
        desc.bytes / (spec_.memBandwidth * desc.efficiency);
    return spec_.kernelLaunchLatency + desc.frameworkOverhead +
           std::max(compute, memory);
}

double
GpuModel::kernelUtilization(const KernelDesc &desc) const
{
    if (desc.utilization >= 0.0)
        return std::clamp(desc.utilization, 0.0, 1.0);
    const double t = kernelTime(desc);
    if (t <= 0.0)
        return 0.0;
    // Fraction of peak compute and peak bandwidth actually achieved;
    // a kernel saturating either subsystem runs the chip hot.
    const double compute_frac = desc.flops / (spec_.flopsPeak * t);
    const double mem_frac = desc.bytes / (spec_.memBandwidth * t);
    const double util = std::max(compute_frac, mem_frac) +
                        0.3 * std::min(compute_frac, mem_frac);
    return std::clamp(util, 0.10, 1.0);
}

double
GpuModel::transferTime(uint64_t bytes) const
{
    return spec_.pcieLatency +
           static_cast<double>(bytes) / spec_.pcieBandwidth;
}

double
GpuModel::uvaAccessTime(uint64_t bytes) const
{
    return static_cast<double>(bytes) / spec_.uvaBandwidth;
}

} // namespace device
} // namespace gnnbench
