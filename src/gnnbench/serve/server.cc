#include "gnnbench/serve/server.h"

#include <cstdlib>
#include <string>
#include <unordered_set>

#include "gnnbench/core/ops.h"
#include "gnnbench/core/rng.h"
#include "gnnbench/profiling/metrics_registry.h"
#include "gnnbench/profiling/trace.h"

namespace gnnbench {
namespace serve {

namespace detail {

int
servePositiveInt(const char *name, const char *value, int fallback)
{
    if (!value || !*value)
        return fallback;
    char *end = nullptr;
    const long v = std::strtol(value, &end, 10);
    GNNBENCH_CHECK(end && *end == '\0' && v > 0 && v <= 1 << 20,
                   name, " must be a positive integer, got '", value,
                   "'");
    return static_cast<int>(v);
}

double
servePositiveMs(const char *name, const char *value,
                double fallback_ms)
{
    if (!value || !*value)
        return fallback_ms;
    char *end = nullptr;
    const double v = std::strtod(value, &end);
    GNNBENCH_CHECK(end && *end == '\0' && v > 0.0,
                   name, " must be a positive number of "
                   "milliseconds, got '", value, "'");
    return v;
}

} // namespace detail

ServeConfig
applyServeEnv(ServeConfig config)
{
    config.workers = detail::servePositiveInt(
        "GNNBENCH_SERVE_WORKERS",
        std::getenv("GNNBENCH_SERVE_WORKERS"), config.workers);
    config.maxBatch = detail::servePositiveInt(
        "GNNBENCH_SERVE_MAX_BATCH",
        std::getenv("GNNBENCH_SERVE_MAX_BATCH"), config.maxBatch);
    config.queueDepth = detail::servePositiveInt(
        "GNNBENCH_SERVE_QUEUE_DEPTH",
        std::getenv("GNNBENCH_SERVE_QUEUE_DEPTH"),
        config.queueDepth);
    config.sloSeconds =
        detail::servePositiveMs("GNNBENCH_SERVE_SLO_MS",
                                std::getenv("GNNBENCH_SERVE_SLO_MS"),
                                config.sloSeconds * 1e3) *
        1e-3;
    return config;
}

Server::Server(const dglx::LoadedData &data, ServeConfig config,
               const Clock &clock)
    : data_(data), config_(std::move(config)), clock_(clock),
      queue_(static_cast<size_t>(config_.queueDepth)),
      batcher_(queue_,
               BatcherConfig{config_.maxBatch,
                             config_.flushSlackSeconds,
                             /*pollSeconds=*/0.0005},
               clock_),
      responses_(static_cast<size_t>(config_.queueDepth) +
                     static_cast<size_t>(config_.workers) *
                         static_cast<size_t>(config_.maxBatch),
                 &responseStats_)
{
    GNNBENCH_CHECK(config_.workers > 0,
                   "serve worker count must be positive");
    GNNBENCH_CHECK(!config_.fanouts.empty(),
                   "serve fanouts must not be empty");
    GNNBENCH_CHECK(config_.sloSeconds > 0.0,
                   "serve SLO must be positive");
    collector_ = std::thread([this] { runCollector(); });
    workers_.reserve(static_cast<size_t>(config_.workers));
    for (int w = 0; w < config_.workers; ++w)
        workers_.emplace_back([this, w] { runWorker(w); });
}

Server::~Server() { shutdown(); }

uint64_t
Server::publish(ModelWeights w)
{
    GNNBENCH_CHECK(w.inDim == data_.features.cols(),
                   "published weights expect ", w.inDim,
                   " input features, dataset has ",
                   data_.features.cols());
    GNNBENCH_CHECK(w.layers.size() == config_.fanouts.size(),
                   "published weights have ", w.layers.size(),
                   " layers but the server samples ",
                   config_.fanouts.size(), " hops");
    const uint64_t version = store_.publish(std::move(w));
    profiling::MetricsRegistry::global()
        .counter("serve.weight_publishes")
        .add(1);
    return version;
}

std::optional<uint64_t>
Server::submit(int32_t tenant, NodeId node)
{
    GNNBENCH_CHECK(node >= 0 && node < data_.graph->numNodes(),
                   "request node ", node, " out of range [0, ",
                   data_.graph->numNodes(), ")");
    GNNBENCH_CHECK(store_.version() > 0,
                   "submit before the first weight publish");
    Request r;
    r.id = nextRequestId_.fetch_add(1, std::memory_order_relaxed) + 1;
    r.tenant = tenant;
    r.node = node;
    r.arrival = clock_.now();
    r.deadline = r.arrival + config_.sloSeconds;
    if (!queue_.tryEnqueue(r))
        return std::nullopt;
    return r.id;
}

void
Server::setOnResponse(std::function<void(const Response &)> fn)
{
    std::lock_guard lock(resultsMutex_);
    onResponse_ = std::move(fn);
}

void
Server::drain()
{
    std::unique_lock lock(resultsMutex_);
    drained_.wait(lock, [this] {
        return completed_.load() == queue_.admitted();
    });
}

void
Server::shutdown()
{
    if (joined_)
        return;
    queue_.close();
    for (auto &t : workers_)
        if (t.joinable())
            t.join();
    responses_.close();
    if (collector_.joinable())
        collector_.join();
    joined_ = true;
    flushMetrics();
}

std::vector<Response>
Server::takeResponses()
{
    std::lock_guard lock(resultsMutex_);
    return std::move(results_);
}

void
Server::runWorker(int worker_index)
{
    // One core per worker: nested kernel parallelFor runs serially,
    // the DataLoader-worker execution model the pipelines share.
    core::parallel::WorkerThreadScope scope;
    profiling::TraceRecorder &trace =
        profiling::TraceRecorder::global();
    trace.setThreadLaneName("serve/w" +
                            std::to_string(worker_index));
    // Per-worker sampler clone; the stream installed here is
    // irrelevant because every request reseeds it from its id.
    dglx::NeighborSampler sampler(*data_.graph, config_.fanouts,
                                  core::Rng(config_.seed));
    while (auto batch = batcher_.nextBatch()) {
        // ONE snapshot for the whole batch: every request coalesced
        // here is answered by the same weight version, no matter how
        // publish() interleaves (snapshot isolation).
        WeightSnapshot weights = store_.acquire();
        GNNBENCH_ASSERT(weights != nullptr,
                        "batch formed before any weight publish");
        profiling::TraceScope ts(
            trace, "batch " + std::to_string(batch->batchId),
            "serve");
        for (const Request &r : batch->requests) {
            // The sampled neighborhood is a pure function of the
            // request id — independent of batching, worker count,
            // and arrival timing (the determinism contract).
            sampler.reseed(core::Rng(core::parallel::chunkSeed(
                config_.seed, 0x5e12e5e12e5e12e5ULL, r.id)));
            sampling::NeighborSample smp = sampler.sample({r.node});
            core::Tensor x = core::ops::gatherRows(
                data_.features, smp.inputNodes());
            core::Tensor logits = inferLogits(smp, x, *weights);
            Response resp;
            resp.id = r.id;
            resp.tenant = r.tenant;
            resp.node = r.node;
            resp.predicted = argmaxClass(logits, 0);
            resp.logits.assign(logits.row(0),
                               logits.row(0) + logits.cols());
            resp.weightVersion = weights->version;
            resp.batchId = batch->batchId;
            resp.batchSize =
                static_cast<int>(batch->requests.size());
            resp.arrival = r.arrival;
            resp.deadline = r.deadline;
            resp.finish = clock_.now();
            responses_.push(std::move(resp));
        }
    }
    profiling::flushRngDraws();
}

void
Server::runCollector()
{
    auto &reg = profiling::MetricsRegistry::global();
    profiling::Histogram &latency = reg.histogram(
        "serve.latency_seconds",
        {1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0});
    profiling::Histogram &batch_size = reg.histogram(
        "serve.batch_size", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});
    profiling::Counter &misses =
        reg.counter("serve.deadline_misses");
    std::unordered_set<uint64_t> batches_seen;
    while (auto resp = responses_.pop()) {
        const Response r = std::move(*resp);
        latency.observe(r.latency());
        if (r.missedDeadline())
            misses.add(1);
        sloWindow_.observe(r.finish, r.missedDeadline());
        publishSloGauges(r.finish);
        // One batch-size observation per batch; workers interleave
        // pushes, so track seen ids instead of assuming contiguity.
        if (batches_seen.insert(r.batchId).second)
            batch_size.observe(static_cast<double>(r.batchSize));
        std::function<void(const Response &)> cb;
        {
            std::lock_guard lock(resultsMutex_);
            cb = onResponse_;
        }
        // The callback must finish BEFORE completed_ advances:
        // drain() returning is the caller's license to destroy
        // whatever state the callback touches.
        if (cb)
            cb(r);
        {
            // completed_ advances under the same mutex drain() waits
            // on, so its predicate can never miss the final wakeup.
            std::lock_guard lock(resultsMutex_);
            results_.push_back(r);
            completed_.fetch_add(1, std::memory_order_relaxed);
        }
        drained_.notify_all();
    }
}

void
Server::publishSloGauges(double now)
{
    auto &reg = profiling::MetricsRegistry::global();
    const profiling::Histogram &latency = reg.histogram(
        "serve.latency_seconds",
        {1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0});
    reg.gauge("serve.slo_p50_seconds").set(latency.percentile(0.50));
    reg.gauge("serve.slo_p95_seconds").set(latency.percentile(0.95));
    reg.gauge("serve.slo_p99_seconds").set(latency.percentile(0.99));
    reg.gauge("serve.slo_miss_rate").set(sloWindow_.missRate(now));
    reg.gauge("serve.slo_burn_rate").set(sloWindow_.burnRate(now));
    reg.gauge("serve.queue_depth")
        .set(static_cast<double>(queue_.depth()));
    const double admitted = static_cast<double>(queue_.admitted());
    const double rejected = static_cast<double>(queue_.rejected());
    reg.gauge("serve.shed_rate")
        .set(admitted + rejected > 0.0
                 ? rejected / (admitted + rejected)
                 : 0.0);
}

void
Server::flushMetrics()
{
    auto &reg = profiling::MetricsRegistry::global();
    reg.counter("serve.requests_admitted").add(queue_.admitted());
    reg.counter("serve.requests_rejected").add(queue_.rejected());
    reg.counter("serve.requests_completed").add(completed_.load());
    reg.counter("serve.batches").add(batcher_.batches());
    reg.gauge("serve.queue_depth_peak")
        .updateMax(static_cast<double>(queue_.peakDepth()));
    reg.counter("serve.response_queue.dequeue_blocks")
        .add(responseStats_.dequeueBlocks.load());
    // Final gauge publication — the collector has joined by now, so
    // sloWindow_ is safe to read from this thread.
    publishSloGauges(clock_.now());
}

} // namespace serve
} // namespace gnnbench
