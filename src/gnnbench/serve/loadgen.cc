#include "gnnbench/serve/loadgen.h"

#include <chrono>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "gnnbench/core/rng.h"

namespace gnnbench {
namespace serve {

const char *
arrivalName(Arrival a)
{
    switch (a) {
    case Arrival::Poisson:
        return "poisson";
    case Arrival::ClosedLoop:
        return "closed";
    }
    return "?";
}

const char *
validArrivalList()
{
    return "poisson/closed";
}

bool
parseArrival(std::string_view name, Arrival *out)
{
    if (name == "poisson") {
        *out = Arrival::Poisson;
        return true;
    }
    if (name == "closed" || name == "closed-loop") {
        *out = Arrival::ClosedLoop;
        return true;
    }
    return false;
}

namespace {

/**
 * Wait until @p clock reads @p target.  Under a RealClock this is a
 * short-sleep loop (pacing granularity ~50us, far below the serve
 * SLOs); under a ManualClock a driver thread must advance time, and
 * the sleep keeps the spin polite.
 */
void
waitUntil(const Clock &clock, double target)
{
    while (clock.now() < target)
        std::this_thread::sleep_for(std::chrono::microseconds(50));
}

LoadGenResult
runPoisson(Server &server, const LoadGenConfig &config,
           const Clock &clock)
{
    LoadGenResult out;
    core::Rng rng(config.seed);
    const int64_t nodes = server.numNodes();
    double next = clock.now();
    out.firstSubmit = next;
    for (int64_t i = 0; i < config.requests; ++i) {
        waitUntil(clock, next);
        const auto node =
            static_cast<NodeId>(rng.uniformInt(
                static_cast<uint64_t>(nodes)));
        const auto tenant =
            static_cast<int32_t>(i % config.tenants);
        if (server.submit(tenant, node))
            ++out.submitted;
        else
            ++out.shed;
        out.lastSubmit = clock.now();
        // Exponential inter-arrival; the schedule is anchored to the
        // previous *scheduled* time, not the submit time, so the
        // generator stays open-loop even when submission lags.
        next += -std::log(1.0 - rng.uniform()) / config.targetQps;
    }
    return out;
}

LoadGenResult
runClosedLoop(Server &server, const LoadGenConfig &config,
              const Clock &clock)
{
    LoadGenResult out;
    core::Rng rng(config.seed);
    const int64_t nodes = server.numNodes();

    // Counting semaphore released by the collector thread's response
    // callback: at most closedLoopClients requests in flight.
    std::mutex mutex;
    std::condition_variable cv;
    int inflight = 0;
    server.setOnResponse([&](const Response &) {
        {
            std::lock_guard lock(mutex);
            --inflight;
        }
        cv.notify_one();
    });

    out.firstSubmit = clock.now();
    for (int64_t i = 0; i < config.requests; ++i) {
        {
            std::unique_lock lock(mutex);
            cv.wait(lock, [&] {
                return inflight < config.closedLoopClients;
            });
            ++inflight;
        }
        const auto node =
            static_cast<NodeId>(rng.uniformInt(
                static_cast<uint64_t>(nodes)));
        const auto tenant =
            static_cast<int32_t>(i % config.tenants);
        if (server.submit(tenant, node)) {
            ++out.submitted;
        } else {
            // Shed requests never produce a response, so release the
            // slot here or the loop wedges at capacity.
            ++out.shed;
            {
                std::lock_guard lock(mutex);
                --inflight;
            }
            cv.notify_one();
        }
        out.lastSubmit = clock.now();
    }
    // Every admitted request must be answered before the callback's
    // captures go out of scope.
    server.drain();
    server.setOnResponse(nullptr);
    return out;
}

} // namespace

LoadGenResult
runLoadGen(Server &server, const LoadGenConfig &config,
           const Clock &clock)
{
    GNNBENCH_CHECK(config.requests > 0,
                   "load generator request count must be positive");
    GNNBENCH_CHECK(config.tenants > 0,
                   "tenant count must be positive");
    GNNBENCH_CHECK(config.targetQps > 0.0,
                   "target QPS must be positive");
    GNNBENCH_CHECK(config.closedLoopClients > 0,
                   "closed-loop client count must be positive");
    if (config.arrival == Arrival::Poisson)
        return runPoisson(server, config, clock);
    return runClosedLoop(server, config, clock);
}

} // namespace serve
} // namespace gnnbench
