/**
 * @file
 * Forward-only GraphSAGE inference over sampled neighborhoods.
 *
 * The serving path never records an autograd tape: it runs the same
 * arithmetic as dglx::SageConv::forwardBlock — CSR SpMM(Sum) through
 * the shared kernels:: dispatch, a 1/in-degree row scale, dense
 * feature transforms, bias, ReLU between layers — directly on
 * core::Tensor.  The op order is identical to the training forward,
 * so serve logits are bit-identical to a dglx forward pass with the
 * same weights (see tests/test_serve.cc), and bit-identical across
 * serving worker counts because each request's sampled neighborhood
 * is a pure function of its request id.
 */

#ifndef GNNBENCH_SERVE_INFERENCE_H
#define GNNBENCH_SERVE_INFERENCE_H

#include "gnnbench/core/tensor.h"
#include "gnnbench/sampling/subgraph.h"
#include "gnnbench/serve/weight_store.h"

namespace gnnbench {
namespace serve {

/**
 * One SAGE mean-aggregation layer over a sampled bipartite block:
 * out = x_dst * W_self + mean_agg(x_src) * W_neigh + bias, where
 * x_dst is the first |dst| rows of @p x_src (block prefix invariant).
 */
core::Tensor sageBlockForward(const sampling::Block &block,
                              const core::Tensor &x_src,
                              const SageLayerWeights &w);

/**
 * Full forward pass for one neighbor sample: applies every layer of
 * @p weights over the sample's blocks (input-side first) with ReLU
 * between layers, returning |seeds| x numClasses logits.
 * @param x_input features of sample.inputNodes(), in that order.
 */
core::Tensor inferLogits(const sampling::NeighborSample &sample,
                         const core::Tensor &x_input,
                         const ModelWeights &weights);

/** Row-wise argmax of logits (ties keep the lowest class index). */
int32_t argmaxClass(const core::Tensor &logits, int64_t row);

} // namespace serve
} // namespace gnnbench

#endif // GNNBENCH_SERVE_INFERENCE_H
