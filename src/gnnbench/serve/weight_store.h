/**
 * @file
 * Versioned, snapshot-isolated model weights for the serving layer.
 *
 * A serving worker must never observe a half-published weight set: a
 * "retrain" publishes a complete new ModelWeights and every batch
 * acquires exactly one immutable snapshot before touching any tensor,
 * so all requests coalesced into one batch are answered by the same
 * weight version (no torn batch).  Snapshots are shared_ptr-held and
 * immutable after publish; in-flight batches keep serving the old
 * version until they finish, then the last reference releases it.
 */

#ifndef GNNBENCH_SERVE_WEIGHT_STORE_H
#define GNNBENCH_SERVE_WEIGHT_STORE_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "gnnbench/core/tensor.h"

namespace gnnbench {
namespace serve {

/** One SAGE layer's parameters (mirrors dglx::SageConv). */
struct SageLayerWeights
{
    core::Tensor self;   ///< in_dim x out_dim
    core::Tensor neigh;  ///< in_dim x out_dim
    core::Tensor bias;   ///< 1 x out_dim
};

/** A complete, immutable-after-publish inference model. */
struct ModelWeights
{
    /** Assigned by WeightStore::publish (0 = never published). */
    uint64_t version = 0;
    int64_t inDim = 0;
    int64_t hiddenDim = 0;
    int64_t numClasses = 0;
    /** layers[0] consumes raw features; layers.back() emits logits. */
    std::vector<SageLayerWeights> layers;

    uint64_t paramBytes() const;
};

using WeightSnapshot = std::shared_ptr<const ModelWeights>;

/**
 * Build a two-layer GraphSAGE weight set with the same glorot
 * initialization draw order as a pair of dglx::SageConv layers
 * constructed from core::Rng(seed).fork() — bit-identical parameters,
 * so serve-side inference can be differentially tested against the
 * training framework's forward pass.
 */
ModelWeights makeSageWeights(int64_t in_dim, int64_t hidden_dim,
                             int64_t num_classes, uint64_t seed);

/**
 * Atomic hot-swap store.  acquire() returns the current snapshot (a
 * cheap shared_ptr copy under a mutex); publish() installs a new
 * complete weight set with the next version number.  Neither call
 * ever blocks on inference work.
 */
class WeightStore
{
  public:
    /** Current snapshot; null until the first publish. */
    WeightSnapshot acquire() const;

    /** Install @p w as the new current version; returns the version
     *  number assigned to it (monotonically increasing from 1). */
    uint64_t publish(ModelWeights w);

    /** Version of the current snapshot (0 before the first publish). */
    uint64_t version() const;

  private:
    mutable std::mutex mutex_;
    WeightSnapshot current_;
    uint64_t nextVersion_ = 1;
};

} // namespace serve
} // namespace gnnbench

#endif // GNNBENCH_SERVE_WEIGHT_STORE_H
