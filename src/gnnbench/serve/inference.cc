#include "gnnbench/serve/inference.h"

#include "gnnbench/core/common.h"
#include "gnnbench/core/ops.h"
#include "gnnbench/dglx/nn.h"
#include "gnnbench/kernels/kernels.h"

namespace gnnbench {
namespace serve {

using core::Tensor;

Tensor
sageBlockForward(const sampling::Block &block, const Tensor &x_src,
                 const SageLayerWeights &w)
{
    GNNBENCH_CHECK(x_src.rows() ==
                       static_cast<int64_t>(block.srcNodes.size()),
                   "x_src rows must match the block's source set");
    // Sum then scale by 1/in-degree, exactly the op order of
    // dglx::SageConv::forwardBlock (Mean-in-one-kernel would round
    // differently and break the differential bit-exactness test).
    Tensor agg = kernels::spmm(block.csc, x_src,
                               kernels::ReduceOp::Sum);
    agg = core::ops::rowScale(agg, dglx::computeInvDegree(block.csc));
    std::vector<NodeId> dst_rows(block.dstNodes.size());
    for (size_t i = 0; i < dst_rows.size(); ++i)
        dst_rows[i] = static_cast<NodeId>(i);
    Tensor x_dst = core::ops::gatherRows(x_src, dst_rows);
    Tensor h = core::ops::add(core::ops::matmul(x_dst, w.self),
                              core::ops::matmul(agg, w.neigh));
    return core::ops::addBias(h, w.bias);
}

Tensor
inferLogits(const sampling::NeighborSample &sample,
            const Tensor &x_input, const ModelWeights &weights)
{
    GNNBENCH_CHECK(sample.blocks.size() == weights.layers.size(),
                   "sample depth (", sample.blocks.size(),
                   " blocks) must match the model depth (",
                   weights.layers.size(), " layers)");
    Tensor h = sageBlockForward(sample.blocks[0], x_input,
                                weights.layers[0]);
    for (size_t l = 1; l < weights.layers.size(); ++l) {
        h = core::ops::relu(h);
        h = sageBlockForward(sample.blocks[l], h, weights.layers[l]);
    }
    GNNBENCH_ASSERT(h.rows() ==
                        static_cast<int64_t>(sample.seeds.size()),
                    "logit rows must equal the seed count");
    return h;
}

int32_t
argmaxClass(const Tensor &logits, int64_t row)
{
    GNNBENCH_CHECK(row >= 0 && row < logits.rows(),
                   "argmax row out of range");
    const float *p = logits.row(row);
    int32_t best = 0;
    for (int64_t c = 1; c < logits.cols(); ++c)
        if (p[c] > p[best])
            best = static_cast<int32_t>(c);
    return best;
}

} // namespace serve
} // namespace gnnbench
