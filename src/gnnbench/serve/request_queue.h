/**
 * @file
 * Admission-controlled request queue and dynamic micro-batcher of the
 * serving layer.
 *
 * RequestQueue is the front door: a bounded FIFO that *never blocks
 * the caller* — when the queue is full the request is shed
 * immediately (admission control / backpressure), counted under
 * "serve.requests_rejected", and the client sees the rejection
 * instead of unbounded queueing delay.  close() wakes every blocked
 * consumer exactly once and lets already-admitted requests drain.
 *
 * MicroBatcher coalesces admitted requests into batches with two
 * triggers, whichever fires first:
 *   - size: maxBatch requests are pending, or
 *   - deadline slack: the oldest pending request is within
 *     flushSlackSeconds of its deadline, so waiting any longer for
 *     more batching would risk the SLO.
 * Time is read off the injectable serve::Clock, so tests drive the
 * deadline trigger deterministically with a ManualClock.
 */

#ifndef GNNBENCH_SERVE_REQUEST_QUEUE_H
#define GNNBENCH_SERVE_REQUEST_QUEUE_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "gnnbench/core/common.h"
#include "gnnbench/serve/clock.h"

namespace gnnbench {
namespace serve {

/** One admitted node-classification request. */
struct Request
{
    uint64_t id = 0;       ///< process-unique, assigned at submit
    int32_t tenant = 0;    ///< tenant the latency is accounted to
    NodeId node = 0;       ///< node to classify
    double arrival = 0.0;  ///< clock seconds at submission
    double deadline = 0.0; ///< arrival + the tenant's SLO budget
};

/** A batch of requests served under one weight snapshot. */
struct RequestBatch
{
    uint64_t batchId = 0;
    std::vector<Request> requests;
};

/**
 * Bounded, shed-on-overload MPMC request queue.  tryEnqueue() and
 * close() never block; dequeue waiting lives in MicroBatcher.
 */
class RequestQueue
{
  public:
    explicit RequestQueue(size_t capacity);

    /**
     * Admit @p r, or shed it when the queue is at capacity or closed.
     * @return true iff admitted.
     */
    bool tryEnqueue(Request r);

    /** Stop admitting; wake blocked consumers (idempotent). */
    void close();

    bool closed() const;
    size_t depth() const;
    uint64_t admitted() const { return admitted_.load(); }
    uint64_t rejected() const { return rejected_.load(); }
    /** Highest depth ever observed at admission. */
    size_t peakDepth() const { return peakDepth_.load(); }

  private:
    friend class MicroBatcher;

    mutable std::mutex mutex_;
    std::condition_variable notEmpty_;
    std::deque<Request> items_;
    size_t capacity_;
    bool closed_ = false;
    std::atomic<uint64_t> admitted_{0};
    std::atomic<uint64_t> rejected_{0};
    std::atomic<size_t> peakDepth_{0};
};

/** Batching triggers (see file comment). */
struct BatcherConfig
{
    int maxBatch = 16;
    /** Flush when the oldest request is this close to its deadline. */
    double flushSlackSeconds = 0.005;
    /** Real-time poll granularity while waiting for the deadline
     *  trigger (bounds staleness under a ManualClock). */
    double pollSeconds = 0.0005;
};

/**
 * Pulls batches off a RequestQueue.  Multiple workers may call
 * nextBatch() concurrently; each admitted request lands in exactly
 * one batch and batch ids are process-unique.
 */
class MicroBatcher
{
  public:
    MicroBatcher(RequestQueue &queue, BatcherConfig config,
                 const Clock &clock);

    /**
     * Block until a trigger fires, then return up to maxBatch
     * requests in admission order; empty optional once the queue is
     * closed and fully drained.  A closed queue flushes immediately
     * (no deadline wait) so shutdown never stalls on slack.
     */
    std::optional<RequestBatch> nextBatch();

    /** Batches formed so far. */
    uint64_t batches() const { return nextBatchId_.load(); }

  private:
    RequestQueue &queue_;
    BatcherConfig config_;
    const Clock &clock_;
    std::atomic<uint64_t> nextBatchId_{0};
};

} // namespace serve
} // namespace gnnbench

#endif // GNNBENCH_SERVE_REQUEST_QUEUE_H
