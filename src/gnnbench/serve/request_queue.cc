#include "gnnbench/serve/request_queue.h"

#include <algorithm>
#include <chrono>

namespace gnnbench {
namespace serve {

RequestQueue::RequestQueue(size_t capacity) : capacity_(capacity)
{
    GNNBENCH_CHECK(capacity > 0,
                   "request queue capacity must be positive");
}

bool
RequestQueue::tryEnqueue(Request r)
{
    {
        std::lock_guard lock(mutex_);
        if (closed_ || items_.size() >= capacity_) {
            rejected_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        items_.push_back(r);
        admitted_.fetch_add(1, std::memory_order_relaxed);
        const size_t depth = items_.size();
        size_t cur = peakDepth_.load(std::memory_order_relaxed);
        while (depth > cur &&
               !peakDepth_.compare_exchange_weak(
                   cur, depth, std::memory_order_relaxed))
            ;
    }
    notEmpty_.notify_one();
    return true;
}

void
RequestQueue::close()
{
    {
        std::lock_guard lock(mutex_);
        if (closed_)
            return;
        closed_ = true;
    }
    notEmpty_.notify_all();
}

bool
RequestQueue::closed() const
{
    std::lock_guard lock(mutex_);
    return closed_;
}

size_t
RequestQueue::depth() const
{
    std::lock_guard lock(mutex_);
    return items_.size();
}

MicroBatcher::MicroBatcher(RequestQueue &queue, BatcherConfig config,
                           const Clock &clock)
    : queue_(queue), config_(config), clock_(clock)
{
    GNNBENCH_CHECK(config_.maxBatch > 0,
                   "micro-batch size must be positive");
    GNNBENCH_CHECK(config_.flushSlackSeconds >= 0.0,
                   "flush slack must be non-negative");
    GNNBENCH_CHECK(config_.pollSeconds > 0.0,
                   "poll interval must be positive");
}

std::optional<RequestBatch>
MicroBatcher::nextBatch()
{
    const auto max = static_cast<size_t>(config_.maxBatch);
    std::unique_lock lock(queue_.mutex_);
    for (;;) {
        if (!queue_.items_.empty()) {
            if (queue_.items_.size() >= max || queue_.closed_)
                break; // size trigger (or shutdown flush)
            const double flush_at = queue_.items_.front().deadline -
                                    config_.flushSlackSeconds;
            const double now = clock_.now();
            if (now >= flush_at)
                break; // deadline-slack trigger
            // Wake on new arrivals/close; re-poll the injectable
            // clock at least every pollSeconds so a ManualClock
            // advanced by another thread is observed promptly.
            const double wait =
                std::min(config_.pollSeconds, flush_at - now);
            queue_.notEmpty_.wait_for(
                lock, std::chrono::duration<double>(wait));
        } else {
            if (queue_.closed_)
                return std::nullopt;
            queue_.notEmpty_.wait(lock);
        }
    }
    RequestBatch batch;
    batch.batchId = nextBatchId_.fetch_add(1) + 1;
    const size_t n = std::min(queue_.items_.size(), max);
    batch.requests.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        batch.requests.push_back(queue_.items_.front());
        queue_.items_.pop_front();
    }
    return batch;
}

} // namespace serve
} // namespace gnnbench
