/**
 * @file
 * Synthetic load generators for the serving layer.
 *
 * Two arrival processes drive the SLO benchmark:
 *  - Poisson: an *open-loop* generator — exponential inter-arrival
 *    times at a target QPS, submitted regardless of how far the
 *    server has fallen behind.  This is the methodology-correct way
 *    to measure tail latency (closed-loop clients coordinate with the
 *    server and hide queueing delay).
 *  - ClosedLoop: a fixed number of concurrent clients, each
 *    submitting its next request when its previous one completes —
 *    the saturation-throughput measurement.
 *
 * Tenants and target nodes are assigned deterministically from the
 * generator seed, and all pacing reads the injectable serve::Clock;
 * under a ManualClock the schedule is replayed without real sleeps.
 */

#ifndef GNNBENCH_SERVE_LOADGEN_H
#define GNNBENCH_SERVE_LOADGEN_H

#include <cstdint>
#include <string_view>

#include "gnnbench/serve/server.h"

namespace gnnbench {
namespace serve {

enum class Arrival
{
    Poisson,    ///< open-loop, exponential inter-arrivals
    ClosedLoop, ///< fixed concurrency, submit-on-completion
};

const char *arrivalName(Arrival a);

/** "poisson/closed" — for error messages and help text. */
const char *validArrivalList();

/** Parse a name from validArrivalList(); false on unknown. */
bool parseArrival(std::string_view name, Arrival *out);

struct LoadGenConfig
{
    Arrival arrival = Arrival::Poisson;
    /** Open-loop target rate (Poisson only). */
    double targetQps = 1000.0;
    /** Concurrent clients (ClosedLoop only). */
    int closedLoopClients = 8;
    int tenants = 4;
    int64_t requests = 1000;
    uint64_t seed = 7;
};

struct LoadGenResult
{
    int64_t submitted = 0; ///< admitted by the server
    int64_t shed = 0;      ///< rejected at admission
    double firstSubmit = 0.0;
    double lastSubmit = 0.0;
};

/**
 * Run the generator to completion on the calling thread: submits
 * config.requests requests to @p server (tenant i%tenants, node
 * drawn uniformly from the graph), pacing with @p clock, and returns
 * the admission tally.  Does NOT drain the server — callers decide
 * when to wait.  ClosedLoop installs the server's onResponse hook.
 */
LoadGenResult runLoadGen(Server &server, const LoadGenConfig &config,
                         const Clock &clock);

} // namespace serve
} // namespace gnnbench

#endif // GNNBENCH_SERVE_LOADGEN_H
