/**
 * @file
 * Injectable clock for the serving subsystem.
 *
 * Every latency-bearing timestamp in serve/ — request arrival,
 * deadline, batch flush decisions, response completion — is read off
 * a Clock interface instead of std::chrono directly.  Production and
 * the throughput bench use RealClock (monotonic wall time); the unit
 * tests use ManualClock, which only moves when the test advances it,
 * so deadline-trigger and SLO-accounting behaviour is exercised
 * deterministically without real sleeps.
 */

#ifndef GNNBENCH_SERVE_CLOCK_H
#define GNNBENCH_SERVE_CLOCK_H

#include <atomic>
#include <chrono>

namespace gnnbench {
namespace serve {

/** Monotonic seconds source; implementations must be thread-safe. */
class Clock
{
  public:
    virtual ~Clock() = default;

    /** Seconds since an arbitrary fixed epoch (monotonic). */
    virtual double now() const = 0;
};

/** Wall-clock time since construction (steady_clock). */
class RealClock final : public Clock
{
  public:
    RealClock() : epoch_(std::chrono::steady_clock::now()) {}

    double
    now() const override
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - epoch_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point epoch_;
};

/**
 * Test clock: time stands still until advance()/set() moves it.
 * Writers and readers may race (atomic double, monotonicity is the
 * test's responsibility).
 */
class ManualClock final : public Clock
{
  public:
    explicit ManualClock(double start = 0.0) : t_(start) {}

    double
    now() const override
    {
        return t_.load(std::memory_order_relaxed);
    }

    void
    advance(double dt)
    {
        double cur = t_.load(std::memory_order_relaxed);
        while (!t_.compare_exchange_weak(cur, cur + dt,
                                         std::memory_order_relaxed))
            ;
    }

    void
    set(double t)
    {
        t_.store(t, std::memory_order_relaxed);
    }

  private:
    std::atomic<double> t_;
};

} // namespace serve
} // namespace gnnbench

#endif // GNNBENCH_SERVE_CLOCK_H
