#include "gnnbench/serve/weight_store.h"

#include <utility>

#include "gnnbench/core/common.h"
#include "gnnbench/core/rng.h"

namespace gnnbench {
namespace serve {

uint64_t
ModelWeights::paramBytes() const
{
    uint64_t bytes = 0;
    for (const SageLayerWeights &l : layers)
        bytes += l.self.bytes() + l.neigh.bytes() + l.bias.bytes();
    return bytes;
}

ModelWeights
makeSageWeights(int64_t in_dim, int64_t hidden_dim,
                int64_t num_classes, uint64_t seed)
{
    GNNBENCH_CHECK(in_dim > 0 && hidden_dim > 0 && num_classes > 0,
                   "model dimensions must be positive");
    ModelWeights w;
    w.inDim = in_dim;
    w.hiddenDim = hidden_dim;
    w.numClasses = num_classes;
    // Same derivation as the GraphSAGE trainer: the layer RNG is one
    // fork of the run seed, and each SageConv draws self-weight then
    // neighbor-weight glorot tensors from it in construction order.
    core::Rng rng(seed);
    core::Rng wrng = rng.fork();
    const int64_t dims[3] = {in_dim, hidden_dim, num_classes};
    for (int layer = 0; layer < 2; ++layer) {
        SageLayerWeights l{
            core::Tensor::glorot(dims[layer], dims[layer + 1], wrng),
            core::Tensor::glorot(dims[layer], dims[layer + 1], wrng),
            core::Tensor::zeros(1, dims[layer + 1])};
        w.layers.push_back(std::move(l));
    }
    return w;
}

WeightSnapshot
WeightStore::acquire() const
{
    std::lock_guard lock(mutex_);
    return current_;
}

uint64_t
WeightStore::publish(ModelWeights w)
{
    GNNBENCH_CHECK(!w.layers.empty(),
                   "cannot publish an empty weight set");
    auto snapshot = std::make_shared<ModelWeights>(std::move(w));
    std::lock_guard lock(mutex_);
    snapshot->version = nextVersion_++;
    current_ = std::move(snapshot);
    return current_->version;
}

uint64_t
WeightStore::version() const
{
    std::lock_guard lock(mutex_);
    return current_ ? current_->version : 0;
}

} // namespace serve
} // namespace gnnbench
