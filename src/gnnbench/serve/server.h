/**
 * @file
 * Multi-tenant GNN inference server: the tentpole of the serving
 * subsystem.
 *
 * Data path: submit() stamps a Request (id, arrival, deadline) and
 * admits it through the bounded RequestQueue (shed-on-overload);
 * a MicroBatcher coalesces admitted requests (size- or deadline-
 * triggered); a pool of worker threads — each marked with
 * core::parallel::WorkerThreadScope so nested kernel parallelism
 * collapses to one core per worker, exactly like the prefetching
 * dataloaders — pulls batches, acquires ONE WeightStore snapshot per
 * batch (snapshot isolation: a concurrent publish can never
 * torn-read a serving batch), samples each request's k-hop
 * neighborhood with a per-worker dglx::NeighborSampler reseeded per
 * request id, and runs the forward-only inference path through the
 * shared kernels:: dispatch.  Responses flow through a
 * core::parallel::BoundedQueue (the prefetch pipeline's queue) to a
 * collector thread that accounts latency and deadline misses.
 *
 * Determinism: a request's logits are a pure function of (graph,
 * features, weight version, node, request id) — per-request RNG
 * streams make them independent of batching, worker count, and
 * arrival timing.  Which *version* answers a request depends only on
 * the batch's snapshot, and every request in a batch shares it.
 *
 * Observability: everything lands in the process metrics registry
 * under "serve.*" (admitted/rejected/completed counters, batch-size
 * and latency histograms, queue-depth peak) and each worker names a
 * "serve/w<k>" trace lane.  The collector additionally maintains the
 * scrape-facing SLO gauges — serve.slo_p50/p95/p99_seconds,
 * serve.slo_miss_rate, serve.slo_burn_rate (sliding window; see
 * profiling/exporter.h), serve.queue_depth, serve.shed_rate — so a
 * live OpenMetrics scrape sees current tail latency and budget burn,
 * not just end-of-run totals.
 */

#ifndef GNNBENCH_SERVE_SERVER_H
#define GNNBENCH_SERVE_SERVER_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "gnnbench/core/parallel.h"
#include "gnnbench/core/tensor.h"
#include "gnnbench/dglx/dataloader.h"
#include "gnnbench/profiling/exporter.h"
#include "gnnbench/serve/clock.h"
#include "gnnbench/serve/inference.h"
#include "gnnbench/serve/request_queue.h"
#include "gnnbench/serve/weight_store.h"

namespace gnnbench {
namespace serve {

/** One answered request. */
struct Response
{
    uint64_t id = 0;
    int32_t tenant = 0;
    NodeId node = 0;
    int32_t predicted = 0;       ///< argmax class
    std::vector<float> logits;   ///< full logit row (bit-exactness)
    uint64_t weightVersion = 0;  ///< snapshot that answered it
    uint64_t batchId = 0;
    int batchSize = 0;
    double arrival = 0.0;
    double finish = 0.0;
    double deadline = 0.0;

    double latency() const { return finish - arrival; }
    bool missedDeadline() const { return finish > deadline; }
};

/** Serving-side knobs (see applyServeEnv for the env overrides). */
struct ServeConfig
{
    int workers = 2;
    int maxBatch = 16;
    /** Micro-batcher deadline-slack flush trigger. */
    double flushSlackSeconds = 0.005;
    /** RequestQueue bound: requests beyond this are shed. */
    int queueDepth = 1024;
    /** Per-request latency SLO budget (deadline = arrival + SLO). */
    double sloSeconds = 0.050;
    /** Per-layer sampling fanouts, input-side first. */
    std::vector<int> fanouts = {10, 5};
    /** Base seed of the per-request sampler streams. */
    uint64_t seed = 1;
};

/**
 * Apply the GNNBENCH_SERVE_* environment overrides to @p config,
 * validating eagerly: an unknown or out-of-range value is fatal at
 * startup with a message listing the accepted form, matching the
 * GNNBENCH_KERNEL_VARIANT convention.  Knobs: GNNBENCH_SERVE_WORKERS,
 * GNNBENCH_SERVE_MAX_BATCH, GNNBENCH_SERVE_QUEUE_DEPTH,
 * GNNBENCH_SERVE_SLO_MS.
 */
ServeConfig applyServeEnv(ServeConfig config);

namespace detail {

/** Parse one positive-integer env value ("" / null = @p fallback);
 *  fatal with the knob name on malformed or non-positive input. */
int servePositiveInt(const char *name, const char *value,
                     int fallback);

/** Parse one positive-double env value (milliseconds knobs). */
double servePositiveMs(const char *name, const char *value,
                       double fallback_ms);

} // namespace detail

/**
 * The serving instance.  Construction starts the worker pool and the
 * response collector; requests are admitted immediately, but no
 * inference happens until the first publish() installs weights (the
 * workers block on the batcher, and submit() refuses requests until a
 * model is live).
 */
class Server
{
  public:
    /**
     * @param data loaded dglx dataset (graph + features + labels);
     *   borrowed, must outlive the server.
     * @param clock injectable time source; borrowed.
     */
    Server(const dglx::LoadedData &data, ServeConfig config,
           const Clock &clock);

    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Hot-swap in a new weight set; returns its version. */
    uint64_t publish(ModelWeights w);

    /** Version currently serving (0 before the first publish). */
    uint64_t weightVersion() const { return store_.version(); }

    /**
     * Submit one request for @p tenant on @p node.  Returns the
     * request id when admitted, nullopt when shed (queue full) or
     * refused (no published model / node out of range is fatal).
     */
    std::optional<uint64_t> submit(int32_t tenant, NodeId node);

    /**
     * Invoked by the collector thread for every response, before it
     * is appended to the internal results; used by closed-loop load
     * generators.  Set before the first submit.
     */
    void setOnResponse(std::function<void(const Response &)> fn);

    /** Block until every admitted request has been answered. */
    void drain();

    /** Stop admitting, drain workers, join all threads (idempotent).
     *  Flushes the "serve.*" metrics snapshot once. */
    void shutdown();

    /** Collected responses (call after drain()/shutdown(); moves). */
    std::vector<Response> takeResponses();

    /** Nodes in the served graph (valid submit() node range). */
    int64_t numNodes() const { return data_.graph->numNodes(); }

    uint64_t admitted() const { return queue_.admitted(); }
    uint64_t rejected() const { return queue_.rejected(); }
    uint64_t completed() const { return completed_.load(); }
    uint64_t batches() const { return batcher_.batches(); }
    size_t queuePeakDepth() const { return queue_.peakDepth(); }
    const ServeConfig &config() const { return config_; }

  private:
    void runWorker(int worker_index);
    void runCollector();
    void flushMetrics();
    /** Re-publish the SLO gauges; called by the collector (which owns
     *  sloWindow_) per response and once more at shutdown. */
    void publishSloGauges(double now);

    const dglx::LoadedData &data_;
    ServeConfig config_;
    const Clock &clock_;
    WeightStore store_;
    RequestQueue queue_;
    MicroBatcher batcher_;
    core::parallel::QueueStats responseStats_;
    core::parallel::BoundedQueue<Response> responses_;
    std::vector<std::thread> workers_;
    std::thread collector_;
    std::atomic<uint64_t> nextRequestId_{0};
    std::atomic<uint64_t> completed_{0};
    std::mutex resultsMutex_;
    std::condition_variable drained_;
    std::vector<Response> results_;
    std::function<void(const Response &)> onResponse_;
    /** Sliding deadline-miss window; collector-thread-only until the
     *  collector joins. */
    profiling::SloWindow sloWindow_;
    bool joined_ = false;
};

} // namespace serve
} // namespace gnnbench

#endif // GNNBENCH_SERVE_SERVER_H
