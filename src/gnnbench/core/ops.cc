#include "gnnbench/core/ops.h"

#include <algorithm>
#include <cmath>

#include "gnnbench/core/parallel.h"

namespace gnnbench {
namespace core {
namespace ops {

namespace {

using parallel::parallelFor;
using parallel::parallelReduce;

/** Elements per chunk for flat elementwise loops. */
constexpr int64_t kElemGrain = 1 << 14;

/** Rows per chunk for rowwise loops, scaled by the row width. */
int64_t
rowGrain(int64_t cols)
{
    return std::max<int64_t>(1, (1 << 13) / std::max<int64_t>(cols, 1));
}

/** Columns per chunk for column-blocked accumulation loops. */
constexpr int64_t kColGrain = 32;

/** Shared shape check for elementwise binary ops. */
void
checkSameShape(const Tensor &a, const Tensor &b, const char *op)
{
    GNNBENCH_CHECK(a.sameShape(b), op, ": shape mismatch ", a.rows(), "x",
                   a.cols(), " vs ", b.rows(), "x", b.cols());
}

} // namespace

Tensor
matmul(const Tensor &a, const Tensor &b)
{
    GNNBENCH_CHECK(a.cols() == b.rows(), "matmul: inner dims ", a.cols(),
                   " vs ", b.rows());
    const int64_t m = a.rows(), k = a.cols(), n = b.cols();
    Tensor c(m, n);
    // i-k-j loop order: streams over B rows and C rows, which is cache
    // friendly for row-major storage and lets the compiler vectorize
    // the inner j loop.
    #pragma omp parallel for schedule(static)
    for (int64_t i = 0; i < m; ++i) {
        const float *arow = a.row(i);
        float *crow = c.row(i);
        for (int64_t kk = 0; kk < k; ++kk) {
            const float av = arow[kk];
            if (av == 0.0f)
                continue;
            const float *brow = b.row(kk);
            for (int64_t j = 0; j < n; ++j)
                crow[j] += av * brow[j];
        }
    }
    return c;
}

Tensor
matmulTa(const Tensor &a, const Tensor &b)
{
    GNNBENCH_CHECK(a.rows() == b.rows(), "matmulTa: outer dims ", a.rows(),
                   " vs ", b.rows());
    const int64_t m = a.cols(), k = a.rows(), n = b.cols();
    Tensor c(m, n);
    // Column-blocked: each chunk owns a disjoint j-range of C (and B),
    // so the kk-outer accumulation order per element is exactly the
    // serial order and results are bit-identical at any thread count.
    parallelFor(0, n, kColGrain, [&](int64_t j0, int64_t j1) {
        for (int64_t kk = 0; kk < k; ++kk) {
            const float *arow = a.row(kk);
            const float *brow = b.row(kk);
            for (int64_t i = 0; i < m; ++i) {
                const float av = arow[i];
                if (av == 0.0f)
                    continue;
                float *crow = c.row(i);
                for (int64_t j = j0; j < j1; ++j)
                    crow[j] += av * brow[j];
            }
        }
    });
    return c;
}

Tensor
matmulTb(const Tensor &a, const Tensor &b)
{
    GNNBENCH_CHECK(a.cols() == b.cols(), "matmulTb: inner dims ", a.cols(),
                   " vs ", b.cols());
    const int64_t m = a.rows(), k = a.cols(), n = b.rows();
    Tensor c(m, n);
    #pragma omp parallel for schedule(static)
    for (int64_t i = 0; i < m; ++i) {
        const float *arow = a.row(i);
        float *crow = c.row(i);
        for (int64_t j = 0; j < n; ++j) {
            const float *brow = b.row(j);
            float acc = 0.0f;
            for (int64_t kk = 0; kk < k; ++kk)
                acc += arow[kk] * brow[kk];
            crow[j] = acc;
        }
    }
    return c;
}

Tensor
transpose(const Tensor &a)
{
    Tensor t = Tensor::empty(a.cols(), a.rows());
    parallelFor(0, a.rows(), rowGrain(a.cols()),
                [&](int64_t r0, int64_t r1) {
                    for (int64_t i = r0; i < r1; ++i)
                        for (int64_t j = 0; j < a.cols(); ++j)
                            t(j, i) = a(i, j);
                });
    return t;
}

Tensor
add(const Tensor &a, const Tensor &b)
{
    checkSameShape(a, b, "add");
    Tensor c = a.clone();
    float *cp = c.data();
    const float *bp = b.data();
    parallelFor(0, c.numel(), kElemGrain, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i)
            cp[i] += bp[i];
    });
    return c;
}

Tensor
sub(const Tensor &a, const Tensor &b)
{
    checkSameShape(a, b, "sub");
    Tensor c = a.clone();
    float *cp = c.data();
    const float *bp = b.data();
    parallelFor(0, c.numel(), kElemGrain, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i)
            cp[i] -= bp[i];
    });
    return c;
}

Tensor
mul(const Tensor &a, const Tensor &b)
{
    checkSameShape(a, b, "mul");
    Tensor c = a.clone();
    float *cp = c.data();
    const float *bp = b.data();
    parallelFor(0, c.numel(), kElemGrain, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i)
            cp[i] *= bp[i];
    });
    return c;
}

Tensor
scale(const Tensor &a, float alpha)
{
    Tensor c = a.clone();
    float *cp = c.data();
    parallelFor(0, c.numel(), kElemGrain, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i)
            cp[i] *= alpha;
    });
    return c;
}

void
axpy(Tensor &a, const Tensor &b, float alpha)
{
    checkSameShape(a, b, "axpy");
    float *ap = a.data();
    const float *bp = b.data();
    parallelFor(0, a.numel(), kElemGrain, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i)
            ap[i] += alpha * bp[i];
    });
}

Tensor
addBias(const Tensor &a, const Tensor &bias)
{
    GNNBENCH_CHECK(bias.rows() == 1 && bias.cols() == a.cols(),
                   "addBias: bias must be 1x", a.cols());
    Tensor c = a.clone();
    const float *bp = bias.data();
    parallelFor(0, c.rows(), rowGrain(c.cols()),
                [&](int64_t r0, int64_t r1) {
                    for (int64_t i = r0; i < r1; ++i) {
                        float *crow = c.row(i);
                        for (int64_t j = 0; j < c.cols(); ++j)
                            crow[j] += bp[j];
                    }
                });
    return c;
}

Tensor
colSum(const Tensor &a)
{
    Tensor s(1, a.cols());
    float *sp = s.data();
    // Column-blocked so each chunk accumulates its own disjoint slice
    // of the output, in the serial (ascending row) order.
    parallelFor(0, a.cols(), kColGrain, [&](int64_t j0, int64_t j1) {
        for (int64_t i = 0; i < a.rows(); ++i) {
            const float *arow = a.row(i);
            for (int64_t j = j0; j < j1; ++j)
                sp[j] += arow[j];
        }
    });
    return s;
}

Tensor
relu(const Tensor &a)
{
    Tensor c = a.clone();
    float *cp = c.data();
    parallelFor(0, c.numel(), kElemGrain, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i)
            cp[i] = std::max(cp[i], 0.0f);
    });
    return c;
}

Tensor
reluGrad(const Tensor &x, const Tensor &grad)
{
    checkSameShape(x, grad, "reluGrad");
    Tensor g = grad.clone();
    float *gp = g.data();
    const float *xp = x.data();
    parallelFor(0, g.numel(), kElemGrain, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i)
            if (xp[i] <= 0.0f)
                gp[i] = 0.0f;
    });
    return g;
}

Tensor
elu(const Tensor &a)
{
    Tensor c = a.clone();
    float *cp = c.data();
    parallelFor(0, c.numel(), kElemGrain, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i)
            if (cp[i] < 0.0f)
                cp[i] = std::expm1(cp[i]);
    });
    return c;
}

Tensor
eluGradFromOutput(const Tensor &y, const Tensor &grad)
{
    checkSameShape(y, grad, "eluGradFromOutput");
    Tensor g = grad.clone();
    float *gp = g.data();
    const float *yp = y.data();
    // d/dx elu(x) = 1 for x > 0 and elu(x) + 1 otherwise.
    parallelFor(0, g.numel(), kElemGrain, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i)
            if (yp[i] < 0.0f)
                gp[i] *= yp[i] + 1.0f;
    });
    return g;
}

Tensor
leakyRelu(const Tensor &a, float slope)
{
    Tensor c = a.clone();
    float *cp = c.data();
    parallelFor(0, c.numel(), kElemGrain, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i)
            if (cp[i] < 0.0f)
                cp[i] *= slope;
    });
    return c;
}

Tensor
leakyReluGrad(const Tensor &x, const Tensor &grad, float slope)
{
    checkSameShape(x, grad, "leakyReluGrad");
    Tensor g = grad.clone();
    float *gp = g.data();
    const float *xp = x.data();
    parallelFor(0, g.numel(), kElemGrain, [&](int64_t i0, int64_t i1) {
        for (int64_t i = i0; i < i1; ++i)
            if (xp[i] < 0.0f)
                gp[i] *= slope;
    });
    return g;
}

Tensor
dropout(const Tensor &a, float p, Rng &rng, Tensor *mask)
{
    GNNBENCH_CHECK(p >= 0.0f && p < 1.0f, "dropout probability ", p);
    Tensor c = a.clone();
    Tensor m(a.rows(), a.cols());
    const float keep_scale = 1.0f / (1.0f - p);
    float *cp = c.data();
    float *mp = m.data();
    for (int64_t i = 0; i < c.numel(); ++i) {
        const bool keep = rng.uniformFloat() >= p;
        mp[i] = keep ? keep_scale : 0.0f;
        cp[i] *= mp[i];
    }
    if (mask)
        *mask = std::move(m);
    return c;
}

Tensor
logSoftmax(const Tensor &a)
{
    Tensor y = Tensor::empty(a.rows(), a.cols());
    parallelFor(0, a.rows(), rowGrain(a.cols()),
                [&](int64_t r0, int64_t r1) {
                    for (int64_t i = r0; i < r1; ++i) {
                        const float *arow = a.row(i);
                        float *yrow = y.row(i);
                        float mx = arow[0];
                        for (int64_t j = 1; j < a.cols(); ++j)
                            mx = std::max(mx, arow[j]);
                        double z = 0.0;
                        for (int64_t j = 0; j < a.cols(); ++j)
                            z += std::exp(
                                static_cast<double>(arow[j] - mx));
                        const float logz =
                            mx + static_cast<float>(std::log(z));
                        for (int64_t j = 0; j < a.cols(); ++j)
                            yrow[j] = arow[j] - logz;
                    }
                });
    return y;
}

Tensor
logSoftmaxGrad(const Tensor &y, const Tensor &grad)
{
    checkSameShape(y, grad, "logSoftmaxGrad");
    Tensor g = Tensor::empty(y.rows(), y.cols());
    parallelFor(0, y.rows(), rowGrain(y.cols()),
                [&](int64_t r0, int64_t r1) {
                    for (int64_t i = r0; i < r1; ++i) {
                        const float *yrow = y.row(i);
                        const float *grow = grad.row(i);
                        float *orow = g.row(i);
                        double gsum = 0.0;
                        for (int64_t j = 0; j < y.cols(); ++j)
                            gsum += grow[j];
                        for (int64_t j = 0; j < y.cols(); ++j) {
                            orow[j] = grow[j] -
                                      std::exp(yrow[j]) *
                                          static_cast<float>(gsum);
                        }
                    }
                });
    return g;
}

float
nllLoss(const Tensor &logprob, const std::vector<int32_t> &labels,
        const std::vector<NodeId> &rows)
{
    auto row_term = [&](int64_t r) {
        const int32_t y = labels[r];
        GNNBENCH_ASSERT(y >= 0 && y < logprob.cols(), "label ", y,
                        " out of range");
        return -static_cast<double>(logprob(r, y));
    };
    double acc = 0.0;
    int64_t count = 0;
    if (rows.empty()) {
        count = logprob.rows();
        acc = parallelReduce(
            0, logprob.rows(), rowGrain(logprob.cols()), 0.0,
            [&](int64_t r0, int64_t r1) {
                double part = 0.0;
                for (int64_t r = r0; r < r1; ++r)
                    part += row_term(r);
                return part;
            },
            [](double x, double y) { return x + y; });
    } else {
        count = static_cast<int64_t>(rows.size());
        for (NodeId r : rows)
            acc += row_term(r);
    }
    GNNBENCH_CHECK(count > 0, "nllLoss over zero rows");
    return static_cast<float>(acc / count);
}

Tensor
nllLossGrad(const Tensor &logprob, const std::vector<int32_t> &labels,
            const std::vector<NodeId> &rows)
{
    Tensor g(logprob.rows(), logprob.cols());
    const int64_t count =
        rows.empty() ? logprob.rows() : static_cast<int64_t>(rows.size());
    GNNBENCH_CHECK(count > 0, "nllLossGrad over zero rows");
    const float scale = -1.0f / static_cast<float>(count);
    if (rows.empty()) {
        parallelFor(0, logprob.rows(), rowGrain(logprob.cols()),
                    [&](int64_t r0, int64_t r1) {
                        for (int64_t r = r0; r < r1; ++r)
                            g(r, labels[r]) = scale;
                    });
    } else {
        for (NodeId r : rows)
            g(r, labels[r]) = scale;
    }
    return g;
}

Tensor
gatherRows(const Tensor &a, const std::vector<NodeId> &idx)
{
    Tensor out = Tensor::empty(static_cast<int64_t>(idx.size()), a.cols());
    parallelFor(0, static_cast<int64_t>(idx.size()), rowGrain(a.cols()),
                [&](int64_t r0, int64_t r1) {
                    for (int64_t i = r0; i < r1; ++i) {
                        GNNBENCH_ASSERT(idx[i] >= 0 && idx[i] < a.rows(),
                                        "gatherRows index out of range");
                        std::copy_n(a.row(idx[i]), a.cols(), out.row(i));
                    }
                });
    return out;
}

Tensor
scatterAddRows(const Tensor &a, const std::vector<NodeId> &idx,
               int64_t out_rows)
{
    GNNBENCH_CHECK(static_cast<int64_t>(idx.size()) == a.rows(),
                   "scatterAddRows: index count mismatch");
    Tensor out(out_rows, a.cols());
    for (size_t i = 0; i < idx.size(); ++i)
        GNNBENCH_ASSERT(idx[i] >= 0 && idx[i] < out_rows,
                        "scatterAddRows index out of range");
    // Duplicate indices make row-parallel accumulation race, so each
    // chunk owns a column block instead: disjoint writes, and the
    // ascending-i accumulation order per element matches serial.
    parallelFor(0, a.cols(), kColGrain, [&](int64_t j0, int64_t j1) {
        for (size_t i = 0; i < idx.size(); ++i) {
            const float *src = a.row(i);
            float *dst = out.row(idx[i]);
            for (int64_t j = j0; j < j1; ++j)
                dst[j] += src[j];
        }
    });
    return out;
}

Tensor
rowScale(const Tensor &a, const std::vector<float> &s)
{
    GNNBENCH_CHECK(static_cast<int64_t>(s.size()) == a.rows(),
                   "rowScale: one scalar per row required");
    Tensor c = a.clone();
    parallelFor(0, c.rows(), rowGrain(c.cols()),
                [&](int64_t r0, int64_t r1) {
                    for (int64_t i = r0; i < r1; ++i) {
                        float *crow = c.row(i);
                        for (int64_t j = 0; j < c.cols(); ++j)
                            crow[j] *= s[i];
                    }
                });
    return c;
}

Tensor
concatCols(const Tensor &a, const Tensor &b)
{
    GNNBENCH_CHECK(a.rows() == b.rows(), "concatCols: row mismatch");
    Tensor c = Tensor::empty(a.rows(), a.cols() + b.cols());
    parallelFor(0, a.rows(), rowGrain(c.cols()),
                [&](int64_t r0, int64_t r1) {
                    for (int64_t i = r0; i < r1; ++i) {
                        std::copy_n(a.row(i), a.cols(), c.row(i));
                        std::copy_n(b.row(i), b.cols(),
                                    c.row(i) + a.cols());
                    }
                });
    return c;
}

void
splitColsGrad(const Tensor &grad, int64_t a_cols, Tensor *ga, Tensor *gb)
{
    GNNBENCH_CHECK(a_cols <= grad.cols(), "splitColsGrad: bad split");
    const int64_t b_cols = grad.cols() - a_cols;
    *ga = Tensor(grad.rows(), a_cols);
    *gb = Tensor(grad.rows(), b_cols);
    parallelFor(0, grad.rows(), rowGrain(grad.cols()),
                [&](int64_t r0, int64_t r1) {
                    for (int64_t i = r0; i < r1; ++i) {
                        std::copy_n(grad.row(i), a_cols, ga->row(i));
                        std::copy_n(grad.row(i) + a_cols, b_cols,
                                    gb->row(i));
                    }
                });
}

int64_t
countCorrect(const Tensor &logits, const std::vector<int32_t> &labels,
             const std::vector<NodeId> &rows)
{
    auto row_hit = [&](int64_t r) -> int64_t {
        const float *row = logits.row(r);
        int64_t best = 0;
        for (int64_t j = 1; j < logits.cols(); ++j)
            if (row[j] > row[best])
                best = j;
        return best == labels[r] ? 1 : 0;
    };
    if (rows.empty()) {
        return parallelReduce(
            0, logits.rows(), rowGrain(logits.cols()),
            static_cast<int64_t>(0),
            [&](int64_t r0, int64_t r1) {
                int64_t part = 0;
                for (int64_t r = r0; r < r1; ++r)
                    part += row_hit(r);
                return part;
            },
            [](int64_t x, int64_t y) { return x + y; });
    }
    int64_t correct = 0;
    for (NodeId r : rows)
        correct += row_hit(r);
    return correct;
}

} // namespace ops
} // namespace core
} // namespace gnnbench
