/**
 * @file
 * Wall-clock timing utilities.  All device-aware time accounting goes
 * through device::Session; Timer is the raw building block.
 */

#ifndef GNNBENCH_CORE_TIMER_H
#define GNNBENCH_CORE_TIMER_H

#include <chrono>

namespace gnnbench {
namespace core {

/** A simple monotonic wall-clock stopwatch measured in seconds. */
class Timer
{
  public:
    Timer() { reset(); }

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Seconds elapsed since construction or the last reset(). */
    double
    elapsed() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace core
} // namespace gnnbench

#endif // GNNBENCH_CORE_TIMER_H
