/**
 * @file
 * Wall-clock timing utilities.  All device-aware time accounting goes
 * through device::Session; Timer is the raw building block.
 */

#ifndef GNNBENCH_CORE_TIMER_H
#define GNNBENCH_CORE_TIMER_H

#include <chrono>
#include <ctime>

namespace gnnbench {
namespace core {

/** A simple monotonic wall-clock stopwatch measured in seconds. */
class Timer
{
  public:
    Timer() { reset(); }

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Seconds elapsed since construction or the last reset(). */
    double
    elapsed() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/**
 * Per-thread CPU-time stopwatch: counts only seconds this thread
 * actually executed, excluding time spent descheduled.  The prefetch
 * pipeline uses it for per-worker busy time, so the critical-path
 * metric stays meaningful even when more workers than cores
 * time-share the machine.
 */
class ThreadCpuTimer
{
  public:
    ThreadCpuTimer() { reset(); }

    void reset() { start_ = now(); }

    double elapsed() const { return now() - start_; }

  private:
    static double
    now()
    {
        timespec ts{};
        clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
        return static_cast<double>(ts.tv_sec) +
               static_cast<double>(ts.tv_nsec) * 1e-9;
    }

    double start_;
};

} // namespace core
} // namespace gnnbench

#endif // GNNBENCH_CORE_TIMER_H
