#include "gnnbench/core/metrics.h"

namespace gnnbench {
namespace core {
namespace metrics {

double
Evaluation::macroF1() const
{
    if (perClass.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &c : perClass)
        sum += c.f1();
    return sum / static_cast<double>(perClass.size());
}

double
Evaluation::microF1() const
{
    int64_t tp = 0, fp = 0, fn = 0;
    for (const auto &c : perClass) {
        tp += c.truePositive;
        fp += c.falsePositive;
        fn += c.falseNegative;
    }
    const double denom = 2.0 * tp + fp + fn;
    return denom > 0.0 ? 2.0 * tp / denom : 0.0;
}

Evaluation
evaluate(const Tensor &logits, const std::vector<int32_t> &labels,
         const std::vector<NodeId> &rows, int32_t num_classes)
{
    GNNBENCH_CHECK(num_classes > 0, "evaluate: no classes");
    GNNBENCH_CHECK(logits.cols() >= num_classes,
                   "evaluate: logits narrower than class count");
    Evaluation eval;
    eval.perClass.resize(num_classes);
    auto eval_row = [&](int64_t r) {
        const float *row = logits.row(r);
        int32_t pred = 0;
        for (int64_t j = 1; j < logits.cols(); ++j)
            if (row[j] > row[pred])
                pred = static_cast<int32_t>(j);
        const int32_t truth = labels[r];
        GNNBENCH_CHECK(truth >= 0 && truth < num_classes,
                       "evaluate: label out of range");
        ++eval.total;
        if (pred == truth) {
            ++eval.correct;
            ++eval.perClass[truth].truePositive;
        } else {
            ++eval.perClass[truth].falseNegative;
            if (pred < num_classes)
                ++eval.perClass[pred].falsePositive;
        }
    };
    if (rows.empty()) {
        for (int64_t r = 0; r < logits.rows(); ++r)
            eval_row(r);
    } else {
        for (NodeId r : rows)
            eval_row(r);
    }
    return eval;
}

} // namespace metrics
} // namespace core
} // namespace gnnbench
