/**
 * @file
 * Classification quality metrics.
 *
 * The paper deliberately excludes accuracy from its comparison (it
 * depends on the GNN method, not the framework), but a usable library
 * still needs evaluation: accuracy, per-class precision/recall, and
 * macro/micro F1 over selected rows (splits).
 */

#ifndef GNNBENCH_CORE_METRICS_H
#define GNNBENCH_CORE_METRICS_H

#include <vector>

#include "gnnbench/core/tensor.h"

namespace gnnbench {
namespace core {
namespace metrics {

/** Per-class counts from argmax predictions. */
struct ClassCounts
{
    int64_t truePositive = 0;
    int64_t falsePositive = 0;
    int64_t falseNegative = 0;

    double
    precision() const
    {
        const int64_t denom = truePositive + falsePositive;
        return denom > 0 ? static_cast<double>(truePositive) / denom
                         : 0.0;
    }

    double
    recall() const
    {
        const int64_t denom = truePositive + falseNegative;
        return denom > 0 ? static_cast<double>(truePositive) / denom
                         : 0.0;
    }

    double
    f1() const
    {
        const double p = precision(), r = recall();
        return p + r > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
    }
};

/** Full evaluation of argmax predictions over selected rows. */
struct Evaluation
{
    int64_t total = 0;
    int64_t correct = 0;
    std::vector<ClassCounts> perClass;

    double
    accuracy() const
    {
        return total > 0 ? static_cast<double>(correct) / total : 0.0;
    }

    /** Unweighted mean of per-class F1 scores. */
    double macroF1() const;

    /** Micro-averaged F1 (equals accuracy for single-label). */
    double microF1() const;
};

/**
 * Evaluate argmax(logits) against integer labels over @p rows (all
 * rows when empty).  @p num_classes bounds the label range.
 */
Evaluation evaluate(const Tensor &logits,
                    const std::vector<int32_t> &labels,
                    const std::vector<NodeId> &rows,
                    int32_t num_classes);

} // namespace metrics
} // namespace core
} // namespace gnnbench

#endif // GNNBENCH_CORE_METRICS_H
