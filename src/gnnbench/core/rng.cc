#include "gnnbench/core/rng.h"

#include <cmath>
#include <numbers>
#include <unordered_set>

namespace gnnbench {
namespace core {

namespace {

/** SplitMix64 step, used only for seeding. */
uint64_t
splitMix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

thread_local uint64_t t_rngDraws = 0;

} // namespace

uint64_t
rngDrawsThisThread()
{
    return t_rngDraws;
}

Rng::Rng(uint64_t seed)
{
    uint64_t s = seed;
    for (auto &word : state_)
        word = splitMix64(s);
}

uint64_t
Rng::next()
{
    ++t_rngDraws;
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double
Rng::uniform()
{
    return (next() >> 11) * 0x1.0p-53;
}

float
Rng::uniformFloat()
{
    return (next() >> 40) * 0x1.0p-24f;
}

uint64_t
Rng::uniformInt(uint64_t bound)
{
    GNNBENCH_ASSERT(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::uniformRange(int64_t lo, int64_t hi)
{
    GNNBENCH_ASSERT(lo <= hi);
    return lo + static_cast<int64_t>(
                    uniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1 = 0.0;
    // Avoid log(0).
    while (u1 <= 1e-300)
        u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cachedNormal_ = r * std::sin(theta);
    hasCachedNormal_ = true;
    return r * std::cos(theta);
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ULL);
}

std::vector<NodeId>
Rng::permutation(NodeId n)
{
    std::vector<NodeId> perm(n);
    for (NodeId i = 0; i < n; ++i)
        perm[i] = i;
    shuffle(perm);
    return perm;
}

std::vector<NodeId>
Rng::sampleWithoutReplacement(NodeId n, NodeId k)
{
    GNNBENCH_ASSERT(k <= n);
    if (k > n / 4) {
        auto perm = permutation(n);
        perm.resize(k);
        return perm;
    }
    // Floyd's algorithm: k iterations, O(k) expected memory.
    std::unordered_set<NodeId> chosen;
    std::vector<NodeId> out;
    out.reserve(k);
    for (NodeId j = n - k; j < n; ++j) {
        NodeId t = static_cast<NodeId>(uniformInt(j + 1));
        if (chosen.count(t)) {
            chosen.insert(j);
            out.push_back(j);
        } else {
            chosen.insert(t);
            out.push_back(t);
        }
    }
    return out;
}

} // namespace core
} // namespace gnnbench
