#include "gnnbench/core/parallel.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <thread>

namespace gnnbench {
namespace core {
namespace parallel {

namespace {

thread_local int t_worker_depth = 0;

/** Pool size from the environment, resolved once at first use. */
int
envThreads()
{
    if (const char *env = std::getenv("GNNBENCH_NUM_THREADS")) {
        const int n = std::atoi(env);
        if (n > 0)
            return n;
        warn("ignoring invalid GNNBENCH_NUM_THREADS value");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

/**
 * One parallel region in flight.  Workers claim chunk indices from an
 * atomic cursor; the submitting thread participates too, so a pool of
 * size N uses N-1 spawned threads.
 */
struct Job
{
    const std::function<void(int64_t, int64_t, int64_t)> *fn = nullptr;
    int64_t begin = 0;
    int64_t grain = 1;
    int64_t totalChunks = 0;
    int64_t rangeEnd = 0;
    std::atomic<int64_t> nextChunk{0};
    std::atomic<int64_t> doneChunks{0};
    std::atomic<bool> cancelled{false};
    std::mutex errorMutex;
    std::exception_ptr error;

    /** Claim-and-run until the cursor runs out. */
    void
    drain()
    {
        for (;;) {
            const int64_t c = nextChunk.fetch_add(1);
            if (c >= totalChunks)
                return;
            if (!cancelled.load(std::memory_order_relaxed)) {
                const int64_t b = begin + c * grain;
                const int64_t e = std::min(rangeEnd, b + grain);
                try {
                    (*fn)(c, b, e);
                } catch (...) {
                    std::lock_guard lock(errorMutex);
                    if (!error)
                        error = std::current_exception();
                    cancelled.store(true, std::memory_order_relaxed);
                }
            }
            doneChunks.fetch_add(1);
        }
    }
};

class ThreadPool
{
  public:
    explicit ThreadPool(int threads) : size_(std::max(1, threads))
    {
        threads_.reserve(size_ - 1);
        for (int t = 0; t < size_ - 1; ++t)
            threads_.emplace_back([this] { workerLoop(); });
    }

    ~ThreadPool()
    {
        {
            std::lock_guard lock(mutex_);
            stop_ = true;
        }
        wake_.notify_all();
        for (auto &t : threads_)
            t.join();
    }

    int size() const { return size_; }

    /**
     * Run one chunked region to completion.  Submissions from
     * concurrent threads (e.g. two dataloader consumers) serialize on
     * submitMutex_; each still completes all its chunks.
     */
    void
    run(std::shared_ptr<Job> job)
    {
        std::lock_guard submit(submitMutex_);
        {
            std::lock_guard lock(mutex_);
            job_ = job;
            ++generation_;
        }
        wake_.notify_all();
        // The submitter participates; while it executes chunks it
        // counts as a worker so nested regions inside its chunk
        // bodies run serially instead of re-entering the pool (which
        // would self-deadlock on submitMutex_).
        ++t_worker_depth;
        job->drain();
        --t_worker_depth;
        // The cursor is exhausted; wait for in-flight chunks.
        {
            std::unique_lock lock(mutex_);
            done_.wait(lock, [&] {
                return job->doneChunks.load() >= job->totalChunks;
            });
            job_.reset();
        }
        if (job->error)
            std::rethrow_exception(job->error);
    }

  private:
    void
    workerLoop()
    {
        ++t_worker_depth;
        uint64_t seen = 0;
        for (;;) {
            std::shared_ptr<Job> job;
            {
                std::unique_lock lock(mutex_);
                wake_.wait(lock, [&] {
                    return stop_ || generation_ != seen;
                });
                if (stop_)
                    return;
                seen = generation_;
                job = job_;
            }
            if (!job)
                continue;
            job->drain();
            // Touch the mutex so the submitter cannot check the done
            // count and sleep between our increment and notify.
            {
                std::lock_guard lock(mutex_);
            }
            done_.notify_all();
        }
    }

    int size_;
    std::vector<std::thread> threads_;
    std::mutex submitMutex_;
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    std::shared_ptr<Job> job_;
    uint64_t generation_ = 0;
    bool stop_ = false;
};

std::mutex g_poolMutex;
std::unique_ptr<ThreadPool> g_pool;
int g_requestedThreads = 0;  // 0 = resolve from the environment

ThreadPool &
pool()
{
    std::lock_guard lock(g_poolMutex);
    if (!g_pool) {
        const int n =
            g_requestedThreads > 0 ? g_requestedThreads : envThreads();
        g_pool = std::make_unique<ThreadPool>(n);
    }
    return *g_pool;
}

} // namespace

int
numThreads()
{
    return pool().size();
}

void
setNumThreads(int n)
{
    std::unique_ptr<ThreadPool> old;
    {
        std::lock_guard lock(g_poolMutex);
        g_requestedThreads = std::max(1, n);
        old = std::move(g_pool);
    }
    // Old pool joins outside the lock; next region builds the new one.
}

bool
inWorkerThread()
{
    return t_worker_depth > 0;
}

WorkerThreadScope::WorkerThreadScope()
{
    ++t_worker_depth;
}

WorkerThreadScope::~WorkerThreadScope()
{
    --t_worker_depth;
}

namespace detail {

int64_t
chunkCount(int64_t begin, int64_t end, int64_t grain)
{
    GNNBENCH_ASSERT(grain > 0, "parallel grain must be positive");
    if (end <= begin)
        return 0;
    return (end - begin + grain - 1) / grain;
}

void
runChunked(int64_t begin, int64_t end, int64_t grain,
           const std::function<void(int64_t, int64_t, int64_t)> &fn)
{
    const int64_t chunks = chunkCount(begin, end, grain);
    if (chunks == 0)
        return;
    // Serial path: single chunk, pool of one, or already on a worker
    // (nested regions must not re-enter the pool).  Chunk order and
    // boundaries are identical to the parallel path, so results are
    // bit-identical regardless of which path runs.
    if (chunks == 1 || inWorkerThread() || pool().size() == 1) {
        for (int64_t c = 0; c < chunks; ++c) {
            const int64_t b = begin + c * grain;
            fn(c, b, std::min(end, b + grain));
        }
        return;
    }
    auto job = std::make_shared<Job>();
    job->fn = &fn;
    job->begin = begin;
    job->grain = grain;
    job->totalChunks = chunks;
    job->rangeEnd = end;
    pool().run(std::move(job));
}

} // namespace detail

} // namespace parallel
} // namespace core
} // namespace gnnbench
