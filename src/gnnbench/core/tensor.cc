#include "gnnbench/core/tensor.h"

#include <algorithm>
#include <cmath>

namespace gnnbench {
namespace core {

Tensor::Tensor(int64_t rows, int64_t cols)
    : Tensor(rows, cols, Uninit{})
{
    if (numel() > 0)
        std::memset(data_.get(), 0, bytes());
}

std::unique_ptr<float[], Tensor::AlignedFree>
Tensor::allocate(size_t numel)
{
    return std::unique_ptr<float[], AlignedFree>(
        static_cast<float *>(::operator new[](
            numel * sizeof(float), std::align_val_t(kAlignment))));
}

Tensor::Tensor(int64_t rows, int64_t cols, Uninit)
    : rows_(rows), cols_(cols)
{
    GNNBENCH_CHECK(rows >= 0 && cols >= 0, "negative tensor shape ", rows,
                   "x", cols);
    data_ = allocate(static_cast<size_t>(rows) *
                     static_cast<size_t>(cols));
}

Tensor::Tensor(const Tensor &other)
    : Tensor(other.rows_, other.cols_, Uninit{})
{
    if (numel() > 0)
        std::memcpy(data_.get(), other.data_.get(), bytes());
}

Tensor &
Tensor::operator=(const Tensor &other)
{
    if (this != &other) {
        if (rows_ != other.rows_ || cols_ != other.cols_) {
            rows_ = other.rows_;
            cols_ = other.cols_;
            data_ = allocate(static_cast<size_t>(numel()));
        }
        if (numel() > 0)
            std::memcpy(data_.get(), other.data_.get(), bytes());
    }
    return *this;
}

Tensor
Tensor::empty(int64_t rows, int64_t cols)
{
    return Tensor(rows, cols, Uninit{});
}

Tensor
Tensor::zeros(int64_t rows, int64_t cols)
{
    return Tensor(rows, cols);
}

Tensor
Tensor::full(int64_t rows, int64_t cols, float value)
{
    Tensor t(rows, cols);
    t.fill(value);
    return t;
}

Tensor
Tensor::randn(int64_t rows, int64_t cols, Rng &rng, float stddev)
{
    Tensor t(rows, cols);
    float *p = t.data();
    const int64_t n = t.numel();
    for (int64_t i = 0; i < n; ++i)
        p[i] = static_cast<float>(rng.normal()) * stddev;
    return t;
}

Tensor
Tensor::uniform(int64_t rows, int64_t cols, Rng &rng, float lo, float hi)
{
    GNNBENCH_CHECK(lo <= hi, "uniform bounds inverted");
    Tensor t(rows, cols);
    float *p = t.data();
    const int64_t n = t.numel();
    for (int64_t i = 0; i < n; ++i)
        p[i] = lo + (hi - lo) * rng.uniformFloat();
    return t;
}

Tensor
Tensor::glorot(int64_t fan_in, int64_t fan_out, Rng &rng)
{
    const float limit =
        std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
    return uniform(fan_in, fan_out, rng, -limit, limit);
}

float &
Tensor::at(int64_t i, int64_t j)
{
    GNNBENCH_CHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_,
                   "tensor index (", i, ",", j, ") out of range ", rows_,
                   "x", cols_);
    return data_[i * cols_ + j];
}

float
Tensor::at(int64_t i, int64_t j) const
{
    GNNBENCH_CHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_,
                   "tensor index (", i, ",", j, ") out of range ", rows_,
                   "x", cols_);
    return data_[i * cols_ + j];
}

void
Tensor::fill(float value)
{
    std::fill_n(data_.get(), numel(), value);
}

float
Tensor::sum() const
{
    double acc = 0.0;
    for (int64_t i = 0; i < numel(); ++i)
        acc += data_[i];
    return static_cast<float>(acc);
}

float
Tensor::maxAbs() const
{
    float m = 0.0f;
    for (int64_t i = 0; i < numel(); ++i)
        m = std::max(m, std::fabs(data_[i]));
    return m;
}

} // namespace core
} // namespace gnnbench
