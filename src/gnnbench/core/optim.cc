#include "gnnbench/core/optim.h"

#include <cmath>

namespace gnnbench {
namespace core {

Optimizer::Optimizer(std::vector<ag::Var> params)
    : params_(std::move(params))
{
    for (const auto &p : params_)
        GNNBENCH_CHECK(p && p->requiresGrad,
                       "optimizer parameter must require grad");
}

void
Optimizer::zeroGrad()
{
    for (auto &p : params_)
        p->zeroGrad();
}

Sgd::Sgd(std::vector<ag::Var> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum)
{
    if (momentum_ != 0.0f) {
        velocity_.reserve(params_.size());
        for (const auto &p : params_)
            velocity_.emplace_back(p->value.rows(), p->value.cols());
    }
}

void
Sgd::step()
{
    for (size_t i = 0; i < params_.size(); ++i) {
        auto &p = params_[i];
        if (p->grad.empty())
            continue;
        if (momentum_ == 0.0f) {
            ops::axpy(p->value, p->grad, -lr_);
        } else {
            Tensor &vel = velocity_[i];
            float *vp = vel.data();
            const float *gp = p->grad.data();
            float *xp = p->value.data();
            for (int64_t j = 0; j < vel.numel(); ++j) {
                vp[j] = momentum_ * vp[j] + gp[j];
                xp[j] -= lr_ * vp[j];
            }
        }
    }
}

Adam::Adam(std::vector<ag::Var> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2),
      eps_(eps)
{
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (const auto &p : params_) {
        m_.emplace_back(p->value.rows(), p->value.cols());
        v_.emplace_back(p->value.rows(), p->value.cols());
    }
}

void
Adam::step()
{
    ++t_;
    const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
    const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
    for (size_t i = 0; i < params_.size(); ++i) {
        auto &p = params_[i];
        if (p->grad.empty())
            continue;
        float *mp = m_[i].data();
        float *vp = v_[i].data();
        const float *gp = p->grad.data();
        float *xp = p->value.data();
        for (int64_t j = 0; j < p->value.numel(); ++j) {
            mp[j] = beta1_ * mp[j] + (1.0f - beta1_) * gp[j];
            vp[j] = beta2_ * vp[j] + (1.0f - beta2_) * gp[j] * gp[j];
            const float mhat = mp[j] / bc1;
            const float vhat = vp[j] / bc2;
            xp[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
        }
    }
}

} // namespace core
} // namespace gnnbench
