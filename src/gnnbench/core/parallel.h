/**
 * @file
 * Shared parallel-execution substrate of gnnbench.
 *
 * A single persistent thread pool serves every CPU-side parallel
 * region in the library: elementwise tensor kernels, scatter/gather,
 * the graph samplers, and the prefetching mini-batch loaders.  The
 * pool size is controlled by the GNNBENCH_NUM_THREADS environment
 * variable (default: all hardware threads); a pool of size 1 degrades
 * to plain serial loops with zero thread traffic.
 *
 * Determinism contract: work is decomposed into chunks of a fixed
 * @p grain that depends only on the loop bounds — never on the pool
 * size — and reductions combine per-chunk partials in chunk order.
 * A parallelFor/parallelReduce therefore produces bit-identical
 * results for *any* thread count, which keeps every figure of the
 * reproduction exactly reproducible under the paper's num_workers
 * sweeps.  Randomized callers preserve the same property by deriving
 * one core::Rng stream per *chunk* (not per thread); see the
 * samplers.
 */

#ifndef GNNBENCH_CORE_PARALLEL_H
#define GNNBENCH_CORE_PARALLEL_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

#include "gnnbench/core/common.h"

namespace gnnbench {
namespace core {
namespace parallel {

/**
 * Threads the global pool targets: GNNBENCH_NUM_THREADS when set to a
 * positive value, otherwise the hardware concurrency (at least 1).
 */
int numThreads();

/**
 * Resize the global pool (used by tests and the scaling ablation to
 * emulate different GNNBENCH_NUM_THREADS settings in-process).  Not
 * safe to call concurrently with running parallel regions.
 */
void setNumThreads(int n);

/**
 * True on a thread that must not fan out again: pool workers and
 * dataloader sampling workers.  Parallel regions on such threads run
 * serially (same chunk decomposition, same results).
 */
bool inWorkerThread();

/**
 * RAII marker turning the current thread into a "worker" for the
 * purpose of inWorkerThread().  The prefetching dataloaders mark
 * their sampling threads so nested sampler parallelism collapses to
 * one core per worker — the DGL/PyG num_workers execution model.
 */
class WorkerThreadScope
{
  public:
    WorkerThreadScope();
    ~WorkerThreadScope();
    WorkerThreadScope(const WorkerThreadScope &) = delete;
    WorkerThreadScope &operator=(const WorkerThreadScope &) = delete;
};

namespace detail {

/** Number of grain-sized chunks covering [begin, end). */
int64_t chunkCount(int64_t begin, int64_t end, int64_t grain);

/**
 * Execute fn(chunk_index, chunk_begin, chunk_end) for every chunk,
 * on the pool when profitable, serially (in chunk order) otherwise.
 * Exceptions thrown by any chunk are rethrown on the calling thread
 * (first one wins; remaining chunks are skipped best-effort).
 */
void runChunked(int64_t begin, int64_t end, int64_t grain,
                const std::function<void(int64_t, int64_t, int64_t)> &fn);

} // namespace detail

/**
 * Parallel loop over [begin, end): body(chunk_begin, chunk_end) is
 * invoked for consecutive chunks of at most @p grain iterations.
 * Chunks are disjoint, so bodies may write disjoint outputs without
 * synchronization.
 */
inline void
parallelFor(int64_t begin, int64_t end, int64_t grain,
            const std::function<void(int64_t, int64_t)> &body)
{
    detail::runChunked(begin, end, grain,
                       [&body](int64_t, int64_t b, int64_t e) {
                           body(b, e);
                       });
}

/**
 * Like parallelFor, but the body also receives the chunk index:
 * body(chunk_index, chunk_begin, chunk_end).  Randomized callers use
 * the index to derive one RNG stream per chunk (see chunkSeed), which
 * keeps their output independent of the thread count.
 */
inline void
parallelForChunks(int64_t begin, int64_t end, int64_t grain,
                  const std::function<void(int64_t, int64_t, int64_t)> &body)
{
    detail::runChunked(begin, end, grain, body);
}

/**
 * Deterministic per-chunk seed: mixes one draw from a parent RNG
 * stream with a caller salt (e.g. the layer index) and the chunk
 * index through a SplitMix64 finalizer.  Feed the result to a fresh
 * core::Rng inside the chunk body.
 */
inline uint64_t
chunkSeed(uint64_t base, uint64_t salt, uint64_t chunk)
{
    uint64_t z = base ^ (salt * 0x9e3779b97f4a7c15ULL) ^
                 (chunk * 0xbf58476d1ce4e5b9ULL);
    z ^= z >> 30;
    z *= 0xbf58476d1ce4e5b9ULL;
    z ^= z >> 27;
    z *= 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return z;
}

/**
 * Parallel reduction over [begin, end): body(chunk_begin, chunk_end)
 * produces one partial per chunk; partials are combined with
 * @p combine in ascending chunk order (deterministic for floating
 * point), starting from @p init.
 */
template <typename T, typename Body, typename Combine>
T
parallelReduce(int64_t begin, int64_t end, int64_t grain, T init,
               Body &&body, Combine &&combine)
{
    const int64_t chunks = detail::chunkCount(begin, end, grain);
    if (chunks <= 0)
        return init;
    std::vector<T> partial(static_cast<size_t>(chunks));
    detail::runChunked(begin, end, grain,
                       [&](int64_t c, int64_t b, int64_t e) {
                           partial[static_cast<size_t>(c)] = body(b, e);
                       });
    T acc = std::move(init);
    for (auto &p : partial)
        acc = combine(std::move(acc), std::move(p));
    return acc;
}

/**
 * Occupancy and backpressure statistics for BoundedQueue, shared by
 * reference so several queues (e.g. one per prefetch worker) can
 * aggregate into a single tally.  All fields are relaxed atomics —
 * they are observability data, not synchronization.
 */
struct QueueStats
{
    std::atomic<uint64_t> pushes{0};
    std::atomic<uint64_t> pops{0};
    /** push() calls that had to wait on a full queue. */
    std::atomic<uint64_t> enqueueBlocks{0};
    /** pop() calls that had to wait on an empty queue. */
    std::atomic<uint64_t> dequeueBlocks{0};
    /** Total producer wall time blocked in push(), nanoseconds. */
    std::atomic<uint64_t> enqueueBlockNanos{0};
    /** Total consumer wall time blocked in pop(), nanoseconds. */
    std::atomic<uint64_t> dequeueBlockNanos{0};
    /** Sum of queue depths observed at each pop (avg = sum/pops). */
    std::atomic<uint64_t> depthSum{0};
    std::atomic<uint64_t> maxDepth{0};

    void
    reset()
    {
        pushes = pops = enqueueBlocks = dequeueBlocks = 0;
        enqueueBlockNanos = dequeueBlockNanos = 0;
        depthSum = maxDepth = 0;
    }
};

/**
 * A bounded blocking MPMC queue, the backbone of the prefetching
 * dataloaders.  push() blocks while the queue is full; pop() blocks
 * while it is empty; close() wakes every waiter, after which push()
 * fails and pop() drains the remaining items before returning empty.
 *
 * An optional QueueStats sink records occupancy and blocking; the
 * extra cost on the uncontended path is a handful of relaxed atomic
 * adds, and block durations are only timed when a wait actually
 * happens.
 */
template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(size_t capacity, QueueStats *stats = nullptr)
        : capacity_(capacity), stats_(stats)
    {
        GNNBENCH_CHECK(capacity > 0, "queue capacity must be positive");
    }

    /** Enqueue; false when the queue was closed. */
    bool
    push(T item)
    {
        std::unique_lock lock(mutex_);
        if (!closed_ && items_.size() >= capacity_) {
            const auto t0 = std::chrono::steady_clock::now();
            notFull_.wait(lock, [this] {
                return closed_ || items_.size() < capacity_;
            });
            if (stats_) {
                const auto dt =
                    std::chrono::steady_clock::now() - t0;
                stats_->enqueueBlocks.fetch_add(
                    1, std::memory_order_relaxed);
                stats_->enqueueBlockNanos.fetch_add(
                    std::chrono::duration_cast<
                        std::chrono::nanoseconds>(dt)
                        .count(),
                    std::memory_order_relaxed);
            }
        }
        if (closed_)
            return false;
        items_.push_back(std::move(item));
        if (stats_) {
            stats_->pushes.fetch_add(1, std::memory_order_relaxed);
            const uint64_t depth = items_.size();
            uint64_t cur =
                stats_->maxDepth.load(std::memory_order_relaxed);
            while (depth > cur &&
                   !stats_->maxDepth.compare_exchange_weak(
                       cur, depth, std::memory_order_relaxed))
                ;
        }
        lock.unlock();
        notEmpty_.notify_one();
        return true;
    }

    /** Dequeue; empty optional when closed and fully drained. */
    std::optional<T>
    pop()
    {
        std::unique_lock lock(mutex_);
        if (!closed_ && items_.empty()) {
            const auto t0 = std::chrono::steady_clock::now();
            notEmpty_.wait(lock, [this] {
                return closed_ || !items_.empty();
            });
            if (stats_) {
                const auto dt =
                    std::chrono::steady_clock::now() - t0;
                stats_->dequeueBlocks.fetch_add(
                    1, std::memory_order_relaxed);
                stats_->dequeueBlockNanos.fetch_add(
                    std::chrono::duration_cast<
                        std::chrono::nanoseconds>(dt)
                        .count(),
                    std::memory_order_relaxed);
            }
        }
        if (items_.empty())
            return std::nullopt;
        if (stats_) {
            stats_->pops.fetch_add(1, std::memory_order_relaxed);
            stats_->depthSum.fetch_add(items_.size(),
                                       std::memory_order_relaxed);
        }
        T item = std::move(items_.front());
        items_.pop_front();
        lock.unlock();
        notFull_.notify_one();
        return item;
    }

    /**
     * Close the queue and wake all blocked producers/consumers.
     * Idempotent: the first call flips the closed flag and broadcasts
     * on both condition variables exactly once; later calls (racing
     * closers, destructor-after-shutdown paths) observe the flag and
     * return without re-notifying, so a closer can never interleave
     * a stale broadcast with a queue that was already drained and
     * re-checked by its waiters.
     */
    void
    close()
    {
        {
            std::lock_guard lock(mutex_);
            if (closed_)
                return;
            closed_ = true;
        }
        notFull_.notify_all();
        notEmpty_.notify_all();
    }

    bool
    closed() const
    {
        std::lock_guard lock(mutex_);
        return closed_;
    }

    size_t
    size() const
    {
        std::lock_guard lock(mutex_);
        return items_.size();
    }

  private:
    mutable std::mutex mutex_;
    std::condition_variable notFull_;
    std::condition_variable notEmpty_;
    std::deque<T> items_;
    size_t capacity_;
    QueueStats *stats_;
    bool closed_ = false;
};

} // namespace parallel
} // namespace core
} // namespace gnnbench

#endif // GNNBENCH_CORE_PARALLEL_H
