/**
 * @file
 * Deterministic pseudo-random number generation for gnnbench.
 *
 * All randomness in the library (graph generation, feature synthesis,
 * samplers, weight initialization, dropout) flows through core::Rng so
 * that every benchmark is exactly reproducible given its seed.  The
 * generator is xoshiro256** seeded through SplitMix64, which is fast,
 * high quality, and trivially portable.
 */

#ifndef GNNBENCH_CORE_RNG_H
#define GNNBENCH_CORE_RNG_H

#include <cstdint>
#include <vector>

#include "gnnbench/core/common.h"

namespace gnnbench {
namespace core {

/**
 * A small, fast, deterministic PRNG (xoshiro256**).
 *
 * Not thread-safe: create one Rng per thread (use fork()) when used
 * inside parallel regions.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform float in [0, 1). */
    float uniformFloat();

    /** Uniform integer in [0, bound). @pre bound > 0. */
    uint64_t uniformInt(uint64_t bound);

    /** Uniform integer in [lo, hi]. @pre lo <= hi. */
    int64_t uniformRange(int64_t lo, int64_t hi);

    /** Standard normal variate (Box-Muller, cached pair). */
    double normal();

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p);

    /**
     * Derive an independent child generator.  Used to hand each
     * worker / module its own stream while keeping global determinism.
     */
    Rng fork();

    /** Random permutation of {0, ..., n-1}. */
    std::vector<NodeId> permutation(NodeId n);

    /** Fisher-Yates shuffle of an arbitrary vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i) {
            size_t j = uniformInt(i);
            std::swap(v[i - 1], v[j]);
        }
    }

    /**
     * Sample k distinct values from {0, ..., n-1} without replacement.
     * Uses Floyd's algorithm for k << n and shuffling otherwise.
     * @pre k <= n.
     */
    std::vector<NodeId> sampleWithoutReplacement(NodeId n, NodeId k);

  private:
    uint64_t state_[4];
    bool hasCachedNormal_ = false;
    double cachedNormal_ = 0.0;
};

/**
 * Total raw draws (Rng::next calls) made on the calling thread, for
 * the "rng.draws" metric.  Per-thread and monotonic; the metrics
 * layer flushes deltas into the process-wide counter.
 */
uint64_t rngDrawsThisThread();

} // namespace core
} // namespace gnnbench

#endif // GNNBENCH_CORE_RNG_H
