/**
 * @file
 * Common infrastructure for gnnbench: fatal/panic error handling,
 * logging helpers, and small shared type aliases.
 *
 * Following the gem5 convention we distinguish two failure classes:
 *  - GNNBENCH_CHECK: the condition is the *user's* fault (bad
 *    configuration, invalid argument).  Prints a message and exits
 *    with status 1.
 *  - GNNBENCH_ASSERT: the condition is an *internal invariant*; a
 *    violation is a gnnbench bug.  Prints a message and aborts.
 */

#ifndef GNNBENCH_CORE_COMMON_H
#define GNNBENCH_CORE_COMMON_H

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace gnnbench {

/** Node index type. Graphs up to ~2^31 nodes are supported. */
using NodeId = int32_t;

/** Edge index type. Large graphs can exceed 2^31 edges. */
using EdgeId = int64_t;

namespace core {

/** Terminate due to a user-facing error (bad config / argument). */
[[noreturn]] void fatal(const char *file, int line, const std::string &msg);

/** Terminate due to a violated internal invariant (gnnbench bug). */
[[noreturn]] void panic(const char *file, int line, const std::string &msg);

/** Print a one-line warning to stderr. */
void warn(const std::string &msg);

/** Print a one-line informational message to stderr. */
void inform(const std::string &msg);

namespace detail {

/** Build "cond_str: extra" style messages for the CHECK/ASSERT macros. */
template <typename... Args>
std::string
formatMessage(const char *cond, Args &&...args)
{
    std::ostringstream oss;
    oss << cond;
    if constexpr (sizeof...(Args) > 0) {
        oss << ": ";
        (oss << ... << args);
    }
    return oss.str();
}

} // namespace detail
} // namespace core
} // namespace gnnbench

/** Fatal user-error check: condition must hold or the run is aborted. */
#define GNNBENCH_CHECK(cond, ...)                                          \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::gnnbench::core::fatal(                                       \
                __FILE__, __LINE__,                                        \
                ::gnnbench::core::detail::formatMessage(                   \
                    #cond __VA_OPT__(, ) __VA_ARGS__));                    \
        }                                                                  \
    } while (0)

/** Internal invariant check: a failure is a bug in gnnbench itself. */
#define GNNBENCH_ASSERT(cond, ...)                                         \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::gnnbench::core::panic(                                       \
                __FILE__, __LINE__,                                        \
                ::gnnbench::core::detail::formatMessage(                   \
                    #cond __VA_OPT__(, ) __VA_ARGS__));                    \
        }                                                                  \
    } while (0)

#endif // GNNBENCH_CORE_COMMON_H
