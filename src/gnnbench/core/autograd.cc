#include "gnnbench/core/autograd.h"

#include <unordered_set>

namespace gnnbench {
namespace core {
namespace ag {

void
Node::accumulateGrad(const Tensor &g)
{
    if (grad.empty()) {
        grad = g.clone();
        return;
    }
    GNNBENCH_ASSERT(grad.sameShape(g), "gradient shape mismatch in ",
                    opName);
    ops::axpy(grad, g, 1.0f);
}

Var
leaf(Tensor value, bool requires_grad)
{
    auto n = std::make_shared<Node>();
    n->value = std::move(value);
    n->requiresGrad = requires_grad;
    n->opName = "leaf";
    return n;
}

Var
constant(Tensor value)
{
    return leaf(std::move(value), false);
}

Var
makeOp(std::string name, Tensor value, std::vector<Var> parents,
       std::function<void(Node &)> backward_fn)
{
    auto n = std::make_shared<Node>();
    n->value = std::move(value);
    n->opName = std::move(name);
    for (const auto &p : parents)
        if (p->requiresGrad)
            n->requiresGrad = true;
    if (n->requiresGrad) {
        n->parents = std::move(parents);
        n->backwardFn = std::move(backward_fn);
    }
    return n;
}

namespace {

/** Post-order DFS over the autograd graph (iterative, cycle-free). */
void
topoSort(const Var &root, std::vector<Node *> &order)
{
    std::unordered_set<Node *> visited;
    std::vector<std::pair<Node *, size_t>> stack;
    stack.emplace_back(root.get(), 0);
    visited.insert(root.get());
    while (!stack.empty()) {
        auto &[node, next_child] = stack.back();
        if (next_child < node->parents.size()) {
            Node *child = node->parents[next_child++].get();
            if (child->requiresGrad && !visited.count(child)) {
                visited.insert(child);
                stack.emplace_back(child, 0);
            }
        } else {
            order.push_back(node);
            stack.pop_back();
        }
    }
}

} // namespace

void
backward(const Var &root, const Tensor *seed)
{
    GNNBENCH_CHECK(root->requiresGrad,
                   "backward() on a graph with no trainable inputs");
    if (seed) {
        GNNBENCH_CHECK(seed->sameShape(root->value),
                       "backward seed shape mismatch");
        root->accumulateGrad(*seed);
    } else {
        GNNBENCH_CHECK(root->value.numel() == 1,
                       "backward() root must be scalar without a seed");
        root->accumulateGrad(Tensor::full(1, 1, 1.0f));
    }
    std::vector<Node *> order;
    topoSort(root, order);
    // Post-order places parents before children; walk in reverse so
    // each node's gradient is complete before it propagates.
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
        Node *n = *it;
        if (n->backwardFn && !n->grad.empty())
            n->backwardFn(*n);
    }
}

Var
matmul(const Var &a, const Var &b)
{
    Tensor y = ops::matmul(a->value, b->value);
    return makeOp("matmul", std::move(y), {a, b}, [a, b](Node &n) {
        if (a->requiresGrad)
            a->accumulateGrad(ops::matmulTb(n.grad, b->value));
        if (b->requiresGrad)
            b->accumulateGrad(ops::matmulTa(a->value, n.grad));
    });
}

Var
add(const Var &a, const Var &b)
{
    Tensor y = ops::add(a->value, b->value);
    return makeOp("add", std::move(y), {a, b}, [a, b](Node &n) {
        if (a->requiresGrad)
            a->accumulateGrad(n.grad);
        if (b->requiresGrad)
            b->accumulateGrad(n.grad);
    });
}

Var
addBias(const Var &x, const Var &bias)
{
    Tensor y = ops::addBias(x->value, bias->value);
    return makeOp("addBias", std::move(y), {x, bias}, [x, bias](Node &n) {
        if (x->requiresGrad)
            x->accumulateGrad(n.grad);
        if (bias->requiresGrad)
            bias->accumulateGrad(ops::colSum(n.grad));
    });
}

Var
scale(const Var &a, float alpha)
{
    Tensor y = ops::scale(a->value, alpha);
    return makeOp("scale", std::move(y), {a}, [a, alpha](Node &n) {
        if (a->requiresGrad)
            a->accumulateGrad(ops::scale(n.grad, alpha));
    });
}

Var
mul(const Var &a, const Var &b)
{
    Tensor y = ops::mul(a->value, b->value);
    return makeOp("mul", std::move(y), {a, b}, [a, b](Node &n) {
        if (a->requiresGrad)
            a->accumulateGrad(ops::mul(n.grad, b->value));
        if (b->requiresGrad)
            b->accumulateGrad(ops::mul(n.grad, a->value));
    });
}

Var
relu(const Var &a)
{
    Tensor y = ops::relu(a->value);
    return makeOp("relu", std::move(y), {a}, [a](Node &n) {
        if (a->requiresGrad)
            a->accumulateGrad(ops::reluGrad(a->value, n.grad));
    });
}

Var
elu(const Var &a)
{
    Tensor y = ops::elu(a->value);
    auto out = makeOp("elu", std::move(y), {a}, [a](Node &n) {
        if (a->requiresGrad)
            a->accumulateGrad(ops::eluGradFromOutput(n.value, n.grad));
    });
    return out;
}

Var
leakyRelu(const Var &a, float slope)
{
    Tensor y = ops::leakyRelu(a->value, slope);
    return makeOp("leakyRelu", std::move(y), {a}, [a, slope](Node &n) {
        if (a->requiresGrad)
            a->accumulateGrad(ops::leakyReluGrad(a->value, n.grad, slope));
    });
}

Var
dropout(const Var &a, float p, Rng &rng)
{
    if (p <= 0.0f)
        return a;
    Tensor mask;
    Tensor y = ops::dropout(a->value, p, rng, &mask);
    auto mask_holder = std::make_shared<Tensor>(std::move(mask));
    return makeOp("dropout", std::move(y), {a}, [a, mask_holder](Node &n) {
        if (a->requiresGrad)
            a->accumulateGrad(ops::mul(n.grad, *mask_holder));
    });
}

Var
logSoftmax(const Var &a)
{
    Tensor y = ops::logSoftmax(a->value);
    return makeOp("logSoftmax", std::move(y), {a}, [a](Node &n) {
        if (a->requiresGrad)
            a->accumulateGrad(ops::logSoftmaxGrad(n.value, n.grad));
    });
}

Var
gatherRows(const Var &a, std::vector<NodeId> idx)
{
    Tensor y = ops::gatherRows(a->value, idx);
    const int64_t out_rows = a->value.rows();
    auto idx_holder =
        std::make_shared<std::vector<NodeId>>(std::move(idx));
    return makeOp("gatherRows", std::move(y), {a},
                  [a, idx_holder, out_rows](Node &n) {
                      if (a->requiresGrad) {
                          a->accumulateGrad(ops::scatterAddRows(
                              n.grad, *idx_holder, out_rows));
                      }
                  });
}

Var
rowScale(const Var &a, std::vector<float> s)
{
    Tensor y = ops::rowScale(a->value, s);
    auto s_holder = std::make_shared<std::vector<float>>(std::move(s));
    return makeOp("rowScale", std::move(y), {a}, [a, s_holder](Node &n) {
        if (a->requiresGrad)
            a->accumulateGrad(ops::rowScale(n.grad, *s_holder));
    });
}

Var
concatCols(const Var &a, const Var &b)
{
    Tensor y = ops::concatCols(a->value, b->value);
    const int64_t a_cols = a->value.cols();
    return makeOp("concatCols", std::move(y), {a, b},
                  [a, b, a_cols](Node &n) {
                      Tensor ga, gb;
                      ops::splitColsGrad(n.grad, a_cols, &ga, &gb);
                      if (a->requiresGrad)
                          a->accumulateGrad(ga);
                      if (b->requiresGrad)
                          b->accumulateGrad(gb);
                  });
}

Var
nllLoss(const Var &logprob, std::vector<int32_t> labels,
        std::vector<NodeId> rows)
{
    const float loss = ops::nllLoss(logprob->value, labels, rows);
    auto labels_holder =
        std::make_shared<std::vector<int32_t>>(std::move(labels));
    auto rows_holder =
        std::make_shared<std::vector<NodeId>>(std::move(rows));
    return makeOp(
        "nllLoss", Tensor::full(1, 1, loss), {logprob},
        [logprob, labels_holder, rows_holder](Node &n) {
            if (!logprob->requiresGrad)
                return;
            Tensor g = ops::nllLossGrad(logprob->value, *labels_holder,
                                        *rows_holder);
            // Chain with the (scalar) upstream gradient.
            const float upstream = n.grad(0, 0);
            if (upstream != 1.0f)
                g = ops::scale(g, upstream);
            logprob->accumulateGrad(g);
        });
}

} // namespace ag
} // namespace core
} // namespace gnnbench
