/**
 * @file
 * A small reverse-mode autograd tape over core::Tensor.
 *
 * Both framework implementations (dglx and pygx) express their layers
 * in terms of these Variables, exactly like DGL and PyG both sit on
 * top of the PyTorch autograd engine.  Framework-specific sparse
 * aggregation kernels register themselves as custom ops through
 * makeOp(), supplying their own backward closure.
 */

#ifndef GNNBENCH_CORE_AUTOGRAD_H
#define GNNBENCH_CORE_AUTOGRAD_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "gnnbench/core/ops.h"
#include "gnnbench/core/tensor.h"

namespace gnnbench {
namespace core {
namespace ag {

class Node;

/** A handle to a node in the autograd graph. */
using Var = std::shared_ptr<Node>;

/**
 * One value in the autograd graph: the forward tensor, the
 * accumulated gradient, and the closure that propagates this node's
 * gradient into its parents.
 */
class Node
{
  public:
    /** Forward value. */
    Tensor value;

    /** Accumulated gradient; empty until backward touches the node. */
    Tensor grad;

    /** Whether gradients should flow to / through this node. */
    bool requiresGrad = false;

    /** Operation name, for profiling and debugging. */
    std::string opName;

    /** Parent operands in the forward graph. */
    std::vector<Var> parents;

    /**
     * Backward closure: reads this->grad and accumulates into the
     * parents' gradients.  Null for leaves.
     */
    std::function<void(Node &)> backwardFn;

    /** Add g into this node's gradient (allocating on first use). */
    void accumulateGrad(const Tensor &g);

    /** Drop the accumulated gradient. */
    void zeroGrad() { grad = Tensor(); }
};

/** Create a leaf variable (input or trainable parameter). */
Var leaf(Tensor value, bool requires_grad);

/** Create a constant (non-differentiable) variable. */
Var constant(Tensor value);

/**
 * Create a custom op node.  The backward closure must add into each
 * requiresGrad parent via accumulateGrad().  Returns a node that
 * requires grad iff any parent does.
 */
Var makeOp(std::string name, Tensor value, std::vector<Var> parents,
           std::function<void(Node &)> backward_fn);

/**
 * Run reverse-mode differentiation from @p root, which must be a
 * scalar (1x1) unless @p seed is supplied.  Gradients accumulate into
 * every reachable node with requiresGrad.
 */
void backward(const Var &root, const Tensor *seed = nullptr);

/// @name Differentiable tensor ops (thin wrappers over core::ops)
/// @{
Var matmul(const Var &a, const Var &b);
Var add(const Var &a, const Var &b);
Var addBias(const Var &x, const Var &bias);
Var scale(const Var &a, float alpha);
Var mul(const Var &a, const Var &b);
Var relu(const Var &a);
Var elu(const Var &a);
Var leakyRelu(const Var &a, float slope);
Var dropout(const Var &a, float p, Rng &rng);
Var logSoftmax(const Var &a);
Var gatherRows(const Var &a, std::vector<NodeId> idx);
Var rowScale(const Var &a, std::vector<float> s);
Var concatCols(const Var &a, const Var &b);

/**
 * Mean NLL loss over the selected rows (all rows when @p rows is
 * empty); returns a scalar Var suitable for backward().
 */
Var nllLoss(const Var &logprob, std::vector<int32_t> labels,
            std::vector<NodeId> rows);
/// @}

} // namespace ag
} // namespace core
} // namespace gnnbench

#endif // GNNBENCH_CORE_AUTOGRAD_H
