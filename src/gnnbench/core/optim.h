/**
 * @file
 * First-order optimizers over autograd leaf parameters.
 *
 * The paper's GNN models are trained with Adam (the DGL/PyG example
 * default); SGD is provided for tests and ablations.
 */

#ifndef GNNBENCH_CORE_OPTIM_H
#define GNNBENCH_CORE_OPTIM_H

#include <vector>

#include "gnnbench/core/autograd.h"

namespace gnnbench {
namespace core {

/** Abstract optimizer over a fixed set of trainable parameters. */
class Optimizer
{
  public:
    explicit Optimizer(std::vector<ag::Var> params);
    virtual ~Optimizer() = default;

    /** Apply one update using the gradients currently accumulated. */
    virtual void step() = 0;

    /** Clear the gradients of every parameter. */
    void zeroGrad();

    /** The managed parameters. */
    const std::vector<ag::Var> &params() const { return params_; }

  protected:
    std::vector<ag::Var> params_;
};

/** Plain SGD with optional momentum. */
class Sgd : public Optimizer
{
  public:
    Sgd(std::vector<ag::Var> params, float lr, float momentum = 0.0f);

    void step() override;

  private:
    float lr_;
    float momentum_;
    std::vector<Tensor> velocity_;
};

/** Adam (Kingma & Ba, 2015) with PyTorch-default hyperparameters. */
class Adam : public Optimizer
{
  public:
    Adam(std::vector<ag::Var> params, float lr = 1e-3f,
         float beta1 = 0.9f, float beta2 = 0.999f, float eps = 1e-8f);

    void step() override;

  private:
    float lr_, beta1_, beta2_, eps_;
    int64_t t_ = 0;
    std::vector<Tensor> m_;
    std::vector<Tensor> v_;
};

} // namespace core
} // namespace gnnbench

#endif // GNNBENCH_CORE_OPTIM_H
