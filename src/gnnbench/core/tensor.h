/**
 * @file
 * A minimal dense 2-D float32 tensor.
 *
 * gnnbench only needs row-major 2-D tensors (node-feature matrices,
 * weight matrices, per-edge score columns), so Tensor is deliberately
 * small: a shape plus contiguous storage with value semantics.  All
 * numeric kernels live in ops.h.
 */

#ifndef GNNBENCH_CORE_TENSOR_H
#define GNNBENCH_CORE_TENSOR_H

#include <cstdint>
#include <cstring>
#include <memory>
#include <new>

#include "gnnbench/core/common.h"
#include "gnnbench/core/rng.h"

namespace gnnbench {
namespace core {

/** A row-major dense matrix of float32 values. */
class Tensor
{
  public:
    /** Empty tensor (0 x 0). */
    Tensor() = default;

    /** Allocate a rows x cols tensor, zero-initialized. */
    Tensor(int64_t rows, int64_t cols);

    Tensor(const Tensor &other);
    Tensor &operator=(const Tensor &other);
    Tensor(Tensor &&other) noexcept = default;
    Tensor &operator=(Tensor &&other) noexcept = default;

    /** Zero-filled tensor. */
    static Tensor zeros(int64_t rows, int64_t cols);

    /**
     * Allocate WITHOUT zero-initialization (torch.empty semantics).
     * Use only when every element will be written before being read
     * — kernels that fully overwrite their output save a whole
     * memory pass this way.
     */
    static Tensor empty(int64_t rows, int64_t cols);

    /** Constant-filled tensor. */
    static Tensor full(int64_t rows, int64_t cols, float value);

    /** I.i.d. normal entries with the given standard deviation. */
    static Tensor randn(int64_t rows, int64_t cols, Rng &rng,
                        float stddev = 1.0f);

    /** I.i.d. uniform entries in [lo, hi). */
    static Tensor uniform(int64_t rows, int64_t cols, Rng &rng, float lo,
                          float hi);

    /**
     * Glorot/Xavier uniform initialization, the default weight init in
     * both DGL and PyG convolution layers.
     */
    static Tensor glorot(int64_t fan_in, int64_t fan_out, Rng &rng);

    int64_t rows() const { return rows_; }
    int64_t cols() const { return cols_; }
    int64_t numel() const { return rows_ * cols_; }
    bool empty() const { return numel() == 0; }

    /** Storage footprint in bytes. */
    size_t bytes() const { return static_cast<size_t>(numel()) * 4; }

    float *data() { return data_.get(); }
    const float *data() const { return data_.get(); }

    /** Pointer to the start of row i. */
    float *row(int64_t i) { return data_.get() + i * cols_; }
    const float *
    row(int64_t i) const
    {
        return data_.get() + i * cols_;
    }

    /** Element access (debug-checked in tests via at()). */
    float &operator()(int64_t i, int64_t j) { return data_[i * cols_ + j]; }
    float operator()(int64_t i, int64_t j) const
    {
        return data_[i * cols_ + j];
    }

    /** Bounds-checked element access. */
    float &at(int64_t i, int64_t j);
    float at(int64_t i, int64_t j) const;

    /** Set every element to the given value. */
    void fill(float value);

    /** Set every element to zero. */
    void zero() { fill(0.0f); }

    /** Deep copy. */
    Tensor clone() const { return *this; }

    /** True when shapes match exactly. */
    bool
    sameShape(const Tensor &other) const
    {
        return rows_ == other.rows_ && cols_ == other.cols_;
    }

    /** Frobenius-norm style helpers used by tests and optimizers. */
    float sum() const;
    float maxAbs() const;

    /** Alignment of the storage returned by data(): one cache line,
     *  so vector kernels can use aligned/streaming accesses whenever
     *  cols() keeps row starts on the same boundary. */
    static constexpr size_t kAlignment = 64;

  private:
    struct Uninit
    {
    };

    /** Frees storage obtained from the aligned allocation path. */
    struct AlignedFree
    {
        void
        operator()(float *p) const
        {
            ::operator delete[](p, std::align_val_t(kAlignment));
        }
    };

    /** Internal: allocate without initialization. */
    Tensor(int64_t rows, int64_t cols, Uninit);

    static std::unique_ptr<float[], AlignedFree>
    allocate(size_t numel);

    int64_t rows_ = 0;
    int64_t cols_ = 0;
    std::unique_ptr<float[], AlignedFree> data_;
};

} // namespace core
} // namespace gnnbench

#endif // GNNBENCH_CORE_TENSOR_H
