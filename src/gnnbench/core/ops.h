/**
 * @file
 * Dense numeric kernels on core::Tensor.
 *
 * These are the shared building blocks both frameworks use for the
 * dense half of a GNN layer (feature transform, bias, activations,
 * softmax / loss).  Sparse aggregation kernels are framework-specific
 * by design (that is the point of the paper) and live in dglx/ and
 * pygx/ respectively.
 */

#ifndef GNNBENCH_CORE_OPS_H
#define GNNBENCH_CORE_OPS_H

#include <cstdint>
#include <vector>

#include "gnnbench/core/rng.h"
#include "gnnbench/core/tensor.h"

namespace gnnbench {
namespace core {
namespace ops {

/** C = A * B. Blocked row-major matmul. */
Tensor matmul(const Tensor &a, const Tensor &b);

/** C = A^T * B. Used by matmul backward (dW = X^T dY). */
Tensor matmulTa(const Tensor &a, const Tensor &b);

/** C = A * B^T. Used by matmul backward (dX = dY W^T). */
Tensor matmulTb(const Tensor &a, const Tensor &b);

/** B = A^T. */
Tensor transpose(const Tensor &a);

/** C = A + B (elementwise). */
Tensor add(const Tensor &a, const Tensor &b);

/** C = A - B (elementwise). */
Tensor sub(const Tensor &a, const Tensor &b);

/** C = A ⊙ B (elementwise product). */
Tensor mul(const Tensor &a, const Tensor &b);

/** C = alpha * A. */
Tensor scale(const Tensor &a, float alpha);

/** A += alpha * B, in place. */
void axpy(Tensor &a, const Tensor &b, float alpha);

/** C[i, :] = A[i, :] + bias[0, :]. @pre bias is 1 x cols. */
Tensor addBias(const Tensor &a, const Tensor &bias);

/** Column-wise sum of A into a 1 x cols tensor (bias gradient). */
Tensor colSum(const Tensor &a);

/** Elementwise max(x, 0). */
Tensor relu(const Tensor &a);

/** grad * 1[x > 0], the backward of relu. */
Tensor reluGrad(const Tensor &x, const Tensor &grad);

/** Elementwise ELU with alpha = 1. */
Tensor elu(const Tensor &a);

/** Backward of elu given the forward *output*. */
Tensor eluGradFromOutput(const Tensor &y, const Tensor &grad);

/** Elementwise LeakyReLU with the given negative slope. */
Tensor leakyRelu(const Tensor &a, float slope);

/** Backward of leakyRelu given the forward input. */
Tensor leakyReluGrad(const Tensor &x, const Tensor &grad, float slope);

/**
 * Inverted dropout: zeroes entries with probability p and scales the
 * survivors by 1/(1-p).  The mask is returned through @p mask so the
 * backward pass can reuse it.
 */
Tensor dropout(const Tensor &a, float p, Rng &rng, Tensor *mask);

/** Row-wise log-softmax. */
Tensor logSoftmax(const Tensor &a);

/**
 * Backward of logSoftmax given its output y and upstream grad:
 * dx = g - softmax(x) * rowsum(g).
 */
Tensor logSoftmaxGrad(const Tensor &y, const Tensor &grad);

/**
 * Mean negative log-likelihood over the rows selected by @p rows
 * (all rows when empty), with integer class labels.
 * @return the scalar loss.
 */
float nllLoss(const Tensor &logprob, const std::vector<int32_t> &labels,
              const std::vector<NodeId> &rows);

/**
 * Gradient of nllLoss w.r.t. the log-probabilities; same row selection
 * convention as nllLoss.
 */
Tensor nllLossGrad(const Tensor &logprob,
                   const std::vector<int32_t> &labels,
                   const std::vector<NodeId> &rows);

/** Select rows of A by index: out[i, :] = A[idx[i], :]. */
Tensor gatherRows(const Tensor &a, const std::vector<NodeId> &idx);

/**
 * Scatter-add rows: out[idx[i], :] += A[i, :], with out having
 * @p out_rows rows.  The backward of gatherRows.
 */
Tensor scatterAddRows(const Tensor &a, const std::vector<NodeId> &idx,
                      int64_t out_rows);

/** out[i, :] = s[i] * A[i, :], one scalar per row. */
Tensor rowScale(const Tensor &a, const std::vector<float> &s);

/** Horizontal concatenation [A | B]. */
Tensor concatCols(const Tensor &a, const Tensor &b);

/** Split the backward of concatCols: grads for A and B. */
void splitColsGrad(const Tensor &grad, int64_t a_cols, Tensor *ga,
                   Tensor *gb);

/** Count of rows where argmax(logits) equals the label (accuracy). */
int64_t countCorrect(const Tensor &logits,
                     const std::vector<int32_t> &labels,
                     const std::vector<NodeId> &rows);

} // namespace ops
} // namespace core
} // namespace gnnbench

#endif // GNNBENCH_CORE_OPS_H
